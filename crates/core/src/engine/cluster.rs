//! Cluster-scale sharded serving: N [`SlsSystem`] nodes behind a query
//! router.
//!
//! The paper evaluates one PIFS node; serving millions of users means a
//! fleet behind a routing tier (ROADMAP item 1). This layer instantiates
//! `n_shards` full nodes, shards the embedding tables across them under a
//! pluggable [`ShardPolicy`], routes each query's lookups to the owning
//! shards as per-node *sub-traces* (variable-size bags via the CSR
//! offsets in [`tracegen::TableLookups`]), runs the open-loop serving
//! engine on every node against the shared arrival stream, and merges
//! the per-node results on two planes:
//!
//! * **Timing plane** — a sharded query completes when its last shard's
//!   response lands at the router: the max over participating shards of
//!   the per-node completion instant, plus a serialized transfer over
//!   the shared aggregation link and one inter-node hop
//!   ([`cxlsim::FlexBusLink`] + [`CxlParams::inter_switch_ns`]) for
//!   every shard other than the query's home shard. A query served
//!   entirely by one shard returns directly — which is why a 1-shard
//!   cluster is *byte-identical* to plain
//!   [`run_open_loop`](SlsSystem::run_open_loop).
//! * **Functional plane** — per-shard partial sums are folded in f64
//!   ([`dlrm::sls::accumulate_row_exact`]) over each shard's owned rows
//!   in bag order and merged in **fixed shard-index order**. Because
//!   procedural embedding values are exact multiples of 2⁻²², the f64
//!   accumulation is exact and therefore associative: the merged
//!   embeddings and query checksums are bit-identical for *every* shard
//!   count and placement policy (the shard-invariance suite asserts
//!   this). The fixed merge order is belt and suspenders on top of the
//!   exactness argument, not a correctness requirement.
//!
//! Determinism: routing, sub-trace construction, per-node simulation and
//! both merge planes are pure functions of `(config, trace, arrivals)`.
//! The aggregation link drains responses in query-id order with shards
//! ascending (the router's reorder buffer is FIFO), so the timing merge
//! is reproducible regardless of which worker ran which node — the
//! property that lets the bench runner fan the per-node sims out as
//! sub-point parts.
//!
//! # Resilience
//!
//! A [`ClusterConfig::faults`] schedule (seeded, pure data — see
//! [`simkit::faults`]) makes nodes die, slow down, or the aggregation
//! link degrade, and the layer answers in kind:
//!
//! * **Failover** — routing consults node liveness at each query's
//!   arrival instant. A dead shard's replicated rows fail over to a
//!   live shard (the replica set covers them); its unreplicated rows
//!   are *lost* and the query completes in **degraded mode**, its
//!   per-query coverage (fraction of lookups served) accounted
//!   exactly. Full-coverage answers stay bit-identical to the
//!   fault-free run — the f64 merge plane is exact, so regrouping
//!   partials around a failover cannot move a bit.
//! * **Partial timeout + hedge** — with
//!   [`ClusterConfig::partial_timeout_ns`] set, a cross-shard partial
//!   landing after `arrival + timeout` counts a timeout; if every row
//!   of that partial is replicated, the router's one deterministic
//!   hedged retry answers from a replica at `arrival + timeout + hop`,
//!   otherwise the partial's lookups are lost and the merge proceeds
//!   degraded.
//! * **Shedding** — per-node admission control
//!   ([`ShedPolicy`](super::serving::ShedPolicy)) surfaces here as
//!   shed participations: a shed sub-query serves none of its lookups,
//!   and a query shed by every participating shard counts as a shed
//!   query, not a served one.
//!
//! The empty schedule takes none of these paths: a zero-fault cluster
//! run is byte-identical to one predating this module (determinism
//! rule 6 in ARCHITECTURE.md).
//!
//! [`CxlParams::inter_switch_ns`]: cxlsim::CxlParams::inter_switch_ns

#![deny(missing_docs)]

use cxlsim::FlexBusLink;
use dlrm::EmbeddingTable;
use pagemgmt::{HotnessTracker, PageId};
use simkit::faults::FaultSchedule;
use simkit::{LatencyHist, SimDuration, SimTime};
use tracegen::{Batch, QueryStream, TableLookups, Trace};

use super::config::SystemConfig;
use super::serving::{OpenLoopOpts, ServingMetrics, TenantServing};
use crate::system::SlsSystem;

/// How embedding rows map to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Owner = `hash(table, row) mod n_shards`: uniform row scatter,
    /// every shard touches every table. Stable under shard-count
    /// *multiplication* in the modular sense — the owner at `m·k`
    /// shards reduces mod `k` to the owner at `k` shards (`h mod m·k ≡
    /// h mod k (mod k)`); owners are otherwise free to move.
    RowHash,
    /// Owner = `table · n_shards / n_tables`: contiguous table ranges,
    /// one shard serves a query's whole bag for each of its tables.
    /// Stable under shard-count multiplication in the hierarchical
    /// sense — the owner at `k` shards is `floor(owner_at_mk / m)`
    /// (each shard's range splits into its `m` children), because
    /// `floor(floor(m·x)/m) = floor(x)`.
    TablePartition,
}

impl ShardPolicy {
    /// Parses the scenario-axis spelling (`row_hash`/`table_partition`).
    /// The error says what was wrong, per the unified parse contract.
    pub fn parse(s: &str) -> Result<ShardPolicy, String> {
        match s {
            "row_hash" => Ok(ShardPolicy::RowHash),
            "table_partition" => Ok(ShardPolicy::TablePartition),
            other => Err(format!(
                "unknown shard policy {other:?} (row_hash|table_partition)"
            )),
        }
    }

    /// The scenario-axis spelling.
    pub fn label(self) -> &'static str {
        match self {
            ShardPolicy::RowHash => "row_hash",
            ShardPolicy::TablePartition => "table_partition",
        }
    }

    /// The shard owning `(table, row)` among `n_shards` shards over
    /// `n_tables` tables (see the variant docs for the stability
    /// promises).
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` or `n_tables` is zero or `table` is out of
    /// range.
    pub fn owner(self, n_shards: u16, n_tables: u32, table: u32, row: u64) -> u16 {
        assert!(n_shards > 0 && n_tables > 0, "degenerate shard space");
        assert!(table < n_tables, "table {table} out of range");
        match self {
            ShardPolicy::RowHash => (mix_table_row(table, row) % n_shards as u64) as u16,
            ShardPolicy::TablePartition => {
                ((table as u64 * n_shards as u64) / n_tables as u64) as u16
            }
        }
    }
}

/// Splitmix64-finished mix of `(table, row)` — independent of the shard
/// count, which is what gives [`ShardPolicy::RowHash`] its modular
/// stability promise.
fn mix_table_row(table: u32, row: u64) -> u64 {
    let mut z = (u64::from(table) << 32 | (u64::from(table) >> 3))
        .wrapping_add(row.wrapping_mul(0x9e3779b97f4a7c15))
        .wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Everything a cluster needs: shard count, placement policy, optional
/// hot-row replication, and the per-node [`SystemConfig`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes (≥ 1).
    pub n_shards: u16,
    /// Row→shard placement policy.
    pub policy: ShardPolicy,
    /// Hottest rows per table replicated onto *every* shard (0 = off).
    /// Hotness is ranked from the trace's access counts with
    /// [`pagemgmt::HotnessTracker`] (hottest first, row-id ascending on
    /// ties), so the replica set is deterministic and identical for
    /// every shard count. Replication never changes functional results
    /// — replicas carry the same procedural values as the owner — it
    /// only lets the router co-locate a hot row's lookup with a bag's
    /// other rows to shrink cross-shard fan-out, and (under faults)
    /// gives a dead shard's rows somewhere to fail over to.
    pub hot_rows_per_table: u32,
    /// The fault schedule this run injects (see [`simkit::faults`]).
    /// The empty schedule — the [`Self::new`] default — keeps every
    /// path byte-identical to a fault-free build.
    pub faults: FaultSchedule,
    /// Per-query deadline for cross-shard partials, ns: a partial
    /// landing at the router after `arrival + timeout` counts a
    /// timeout and is hedged to a replica (when its rows are all
    /// replicated) or declared lost. `None` (the default) waits
    /// forever, the historical behaviour.
    pub partial_timeout_ns: Option<u64>,
    /// The configuration every node is built from.
    pub node: SystemConfig,
}

impl ClusterConfig {
    /// A cluster of `n_shards` nodes, no replication, no faults.
    pub fn new(n_shards: u16, policy: ShardPolicy, node: SystemConfig) -> Self {
        ClusterConfig {
            n_shards,
            policy,
            hot_rows_per_table: 0,
            faults: FaultSchedule::none(n_shards),
            partial_timeout_ns: None,
            node,
        }
    }
}

/// The frozen row→shard map for one trace: the policy plus the
/// hotness-ranked replica set.
#[derive(Debug, Clone)]
pub struct ShardPlacement {
    n_shards: u16,
    n_tables: u32,
    policy: ShardPolicy,
    /// Rows replicated on every shard, per table (sorted for binary
    /// search; empty when replication is off).
    replicated: Vec<Vec<u64>>,
}

impl ShardPlacement {
    /// Builds the placement for `trace` under `cfg`, ranking the
    /// replica set from the trace's per-table access counts.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.n_shards` is zero or the trace has no tables.
    pub fn build(cfg: &ClusterConfig, trace: &Trace) -> ShardPlacement {
        assert!(cfg.n_shards > 0, "a cluster needs at least one shard");
        let n_tables = trace.n_tables;
        let mut replicated = vec![Vec::new(); n_tables as usize];
        if cfg.hot_rows_per_table > 0 {
            let mut trackers = vec![HotnessTracker::new(); n_tables as usize];
            for (_, table, _, row) in trace.iter_lookups() {
                trackers[table as usize].record(PageId(row));
            }
            for (rows, tracker) in replicated.iter_mut().zip(&trackers) {
                *rows = tracker
                    .hottest(cfg.hot_rows_per_table as usize)
                    .into_iter()
                    .map(|p| p.0)
                    .collect();
                rows.sort_unstable();
            }
        }
        ShardPlacement {
            n_shards: cfg.n_shards,
            n_tables,
            policy: cfg.policy,
            replicated,
        }
    }

    /// A placement with no replica set, constructible from the shard
    /// dimensions alone — no trace scan. Identical to [`Self::build`]
    /// whenever `hot_rows_per_table` is 0 (the common serving
    /// configuration), which is what lets the streaming cluster path
    /// route without ever materializing the workload.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` or `n_tables` is zero.
    pub fn from_dims(n_shards: u16, n_tables: u32, policy: ShardPolicy) -> ShardPlacement {
        assert!(n_shards > 0, "a cluster needs at least one shard");
        assert!(n_tables > 0, "a placement needs at least one table");
        ShardPlacement {
            n_shards,
            n_tables,
            policy,
            replicated: vec![Vec::new(); n_tables as usize],
        }
    }

    /// Builds the placement for a lazy stream under `cfg`: identical to
    /// [`Self::build`] on the stream's materialized trace. With
    /// replication off this is [`Self::from_dims`] (no workload pass at
    /// all); with replication on, one clone of the stream is walked to
    /// rank hotness — `stream` itself is not consumed.
    ///
    /// # Panics
    ///
    /// Panics if `stream` is not at position 0 (hotness must rank the
    /// whole workload) or the dimensions are degenerate.
    pub fn build_streamed<S: TaggedQuerySource>(cfg: &ClusterConfig, stream: &S) -> ShardPlacement {
        let n_tables = stream.n_tables();
        if cfg.hot_rows_per_table == 0 {
            return ShardPlacement::from_dims(cfg.n_shards, n_tables, cfg.policy);
        }
        assert_eq!(
            stream.position(),
            0,
            "hotness ranking needs the whole stream"
        );
        let mut walk = stream.clone();
        let mut trackers = vec![HotnessTracker::new(); n_tables as usize];
        while walk.next_tagged().is_some() {
            for t in 0..n_tables {
                for &row in walk.bag(t) {
                    trackers[t as usize].record(PageId(row));
                }
            }
        }
        let replicated = trackers
            .iter()
            .map(|tracker| {
                let mut rows: Vec<u64> = tracker
                    .hottest(cfg.hot_rows_per_table as usize)
                    .into_iter()
                    .map(|p| p.0)
                    .collect();
                rows.sort_unstable();
                rows
            })
            .collect();
        ShardPlacement {
            n_shards: cfg.n_shards,
            n_tables,
            policy: cfg.policy,
            replicated,
        }
    }

    /// The routing sentinel for a lookup no live shard can serve: its
    /// owner is dead and no replica covers it. Lost lookups are counted
    /// into the query's coverage, never enqueued anywhere.
    pub const LOST: u16 = u16::MAX;

    /// Number of shards.
    pub fn n_shards(&self) -> u16 {
        self.n_shards
    }

    /// The shard owning `(table, row)` under the policy (replication
    /// aside — the owner also holds a replicated row's primary copy).
    pub fn owner(&self, table: u32, row: u64) -> u16 {
        self.policy.owner(self.n_shards, self.n_tables, table, row)
    }

    /// Whether `(table, row)` is replicated on every shard.
    pub fn is_replicated(&self, table: u32, row: u64) -> bool {
        self.replicated[table as usize].binary_search(&row).is_ok()
    }

    /// Serving shard of each row in one bag, written into `out` (one
    /// entry per row, bag order). Non-replicated rows go to their
    /// owner. A replicated row co-routes to the lowest-index shard
    /// already serving one of the bag's non-replicated rows — shrinking
    /// the bag's shard fan-out — and falls back to its owner when the
    /// bag holds replicated rows only. Every lookup is served exactly
    /// once (the conservation tests assert no duplicates).
    pub fn route_bag(&self, table: u32, rows: &[u64], out: &mut Vec<u16>) {
        out.clear();
        let mut pinned: Option<u16> = None;
        for &row in rows {
            if self.is_replicated(table, row) {
                out.push(u16::MAX); // placeholder: resolved below
            } else {
                let s = self.owner(table, row);
                pinned = Some(pinned.map_or(s, |p| p.min(s)));
                out.push(s);
            }
        }
        for (slot, &row) in out.iter_mut().zip(rows) {
            if *slot == u16::MAX {
                *slot = pinned.unwrap_or_else(|| self.owner(table, row));
            }
        }
    }

    /// Liveness-aware [`Self::route_bag`]: the fault schedule is
    /// consulted at the query's arrival instant `at`. A dead owner's
    /// replicated rows fail over — to the bag's pinned live shard, the
    /// owner if it still lives, or the lowest live shard — while its
    /// unreplicated rows route to [`Self::LOST`] (no copy exists
    /// anywhere else). Returns the number of failed-over rows. With an
    /// empty schedule this *is* `route_bag`, bit for bit.
    pub fn route_bag_at(
        &self,
        table: u32,
        rows: &[u64],
        at: SimTime,
        faults: &FaultSchedule,
        out: &mut Vec<u16>,
    ) -> u64 {
        if faults.is_none() {
            self.route_bag(table, rows, out);
            return 0;
        }
        // Replicated rows get a placeholder distinct from LOST; dead
        // unreplicated owners route to LOST immediately. `pinned` only
        // ever holds a live shard.
        const REPL: u16 = u16::MAX - 1;
        out.clear();
        let mut pinned: Option<u16> = None;
        for &row in rows {
            if self.is_replicated(table, row) {
                out.push(REPL);
            } else {
                let s = self.owner(table, row);
                if faults.alive(s, at) {
                    pinned = Some(pinned.map_or(s, |p| p.min(s)));
                    out.push(s);
                } else {
                    out.push(Self::LOST);
                }
            }
        }
        let mut failovers = 0u64;
        for (slot, &row) in out.iter_mut().zip(rows) {
            if *slot == REPL {
                let owner = self.owner(table, row);
                let owner_alive = faults.alive(owner, at);
                *slot = match pinned {
                    Some(p) => p,
                    None if owner_alive => owner,
                    None => (0..self.n_shards)
                        .find(|&s| faults.alive(s, at))
                        .unwrap_or(Self::LOST),
                };
                if !owner_alive && *slot != Self::LOST {
                    failovers += 1;
                }
            }
        }
        failovers
    }
}

/// One node's routed share of a cluster workload: the sub-trace holding
/// only the rows this shard serves (variable-size CSR bags), the
/// arrival instants of its participating queries, and the global query
/// id behind each local one.
#[derive(Debug, Clone)]
pub struct ShardWorkload {
    /// The per-node trace: local query `q` is sample `q % batch_size`
    /// of batch `q / batch_size`, exactly as
    /// [`run_open_loop`](SlsSystem::run_open_loop) expects.
    pub trace: Trace,
    /// Arrival instant of each local query (a subsequence of the
    /// cluster arrival stream, so it stays sorted).
    pub arrivals: Vec<SimTime>,
    /// Global qid of each local query, ascending.
    pub qids: Vec<u64>,
}

/// Per-shard sub-trace builder: appends one query's sub-bags at a time,
/// closing batches at `batch_size` queries.
struct ShardTraceBuilder {
    batch_size: u32,
    n_tables: u32,
    /// Per-table (indices, offsets) of the batch under construction.
    current: Vec<(Vec<u64>, Vec<u32>)>,
    in_batch: u32,
    batches: Vec<Batch>,
}

impl ShardTraceBuilder {
    fn new(n_tables: u32, batch_size: u32) -> Self {
        ShardTraceBuilder {
            batch_size,
            n_tables,
            current: (0..n_tables).map(|_| (Vec::new(), vec![0])).collect(),
            in_batch: 0,
            batches: Vec::new(),
        }
    }

    /// Appends one query: `bags[t]` holds the rows this shard serves
    /// for table `t` (possibly empty).
    fn push_query(&mut self, bags: &[Vec<u64>]) {
        for ((indices, offsets), bag) in self.current.iter_mut().zip(bags) {
            indices.extend_from_slice(bag);
            offsets.push(indices.len() as u32);
        }
        self.in_batch += 1;
        if self.in_batch == self.batch_size {
            self.close_batch();
        }
    }

    /// Closes the batch under construction, padding trailing samples
    /// with empty bags.
    fn close_batch(&mut self) {
        if self.in_batch == 0 {
            return;
        }
        let tables = self
            .current
            .iter_mut()
            .enumerate()
            .map(|(t, (indices, offsets))| {
                offsets.resize(
                    self.batch_size as usize + 1,
                    *offsets.last().expect("seeded"),
                );
                TableLookups::with_offsets(
                    t as u32,
                    std::mem::take(indices),
                    std::mem::replace(offsets, vec![0]),
                )
            })
            .collect();
        self.batches.push(Batch { tables });
        self.in_batch = 0;
    }

    fn finish(mut self, rows_per_table: u64, bag_size: u32) -> Trace {
        self.close_batch();
        Trace {
            n_tables: self.n_tables,
            rows_per_table,
            batch_size: self.batch_size,
            bag_size,
            batches: self.batches,
        }
    }
}

/// Routes `(trace, arrivals)` across the placement's shards: query `q`
/// is split into per-shard sub-bags (each shard receives, per table,
/// exactly the rows it serves, in bag order), and a query is enqueued
/// only on shards serving at least one of its rows. Routing consults
/// `faults` at each arrival (pass the empty schedule for the
/// historical behaviour). For a 1-shard fault-free placement the sole
/// workload reproduces the input trace's bags and arrival stream
/// verbatim. Returns the per-shard workloads plus the
/// [`RoutedStream`] record the merge keys on.
///
/// # Panics
///
/// Panics as [`run_open_loop`](SlsSystem::run_open_loop) would: if
/// `arrivals` exceeds the trace's sample capacity.
pub fn shard_workloads(
    placement: &ShardPlacement,
    faults: &FaultSchedule,
    trace: &Trace,
    arrivals: &[SimTime],
) -> (Vec<ShardWorkload>, RoutedStream) {
    let capacity = trace.batches.len() as u64 * trace.batch_size as u64;
    assert!(
        arrivals.len() as u64 <= capacity,
        "arrival stream has more queries than the trace has samples"
    );
    let k = placement.n_shards as usize;
    let n_tables = trace.n_tables as usize;
    let mut builders: Vec<ShardTraceBuilder> = (0..k)
        .map(|_| ShardTraceBuilder::new(trace.n_tables, trace.batch_size))
        .collect();
    let mut out: Vec<ShardWorkload> = (0..k)
        .map(|_| ShardWorkload {
            trace: Trace {
                n_tables: trace.n_tables,
                rows_per_table: trace.rows_per_table,
                batch_size: trace.batch_size,
                bag_size: trace.bag_size,
                batches: Vec::new(),
            },
            arrivals: Vec::new(),
            qids: Vec::new(),
        })
        .collect();
    let mut routed = RoutedStream {
        qids: vec![Vec::new(); k],
        touched: vec![Vec::new(); k],
        lookups: vec![Vec::new(); k],
        hedgeable: vec![Vec::new(); k],
        ..RoutedStream::default()
    };

    // Per-query scratch: sub-bags[shard][table] and the routing vector.
    let mut sub: Vec<Vec<Vec<u64>>> = vec![vec![Vec::new(); n_tables]; k];
    let mut route: Vec<u16> = Vec::new();
    let mut all_repl: Vec<bool> = vec![true; k];
    for (qid, &at) in arrivals.iter().enumerate() {
        let batch = qid / trace.batch_size as usize;
        let sample = (qid % trace.batch_size as usize) as u32;
        routed.arrivals.push(at);
        for shard in sub.iter_mut() {
            for bag in shard.iter_mut() {
                bag.clear();
            }
        }
        all_repl.iter_mut().for_each(|r| *r = true);
        let mut total = 0u64;
        let mut lost = 0u64;
        for t in 0..trace.n_tables {
            let bag = trace.bag(batch, t, sample);
            routed.failovers += placement.route_bag_at(t, bag, at, faults, &mut route);
            total += bag.len() as u64;
            for (&row, &s) in bag.iter().zip(&route) {
                if s == ShardPlacement::LOST {
                    lost += 1;
                    continue;
                }
                sub[s as usize][t as usize].push(row);
                all_repl[s as usize] &= placement.is_replicated(t, row);
            }
        }
        routed.total_lookups.push(total);
        routed.lost_lookups.push(lost);
        for (s, shard) in sub.iter().enumerate() {
            let tables_touched = shard.iter().filter(|bag| !bag.is_empty()).count() as u64;
            if tables_touched > 0 {
                builders[s].push_query(shard);
                out[s].arrivals.push(at);
                out[s].qids.push(qid as u64);
                routed.qids[s].push(qid as u64);
                routed.touched[s].push(tables_touched);
                routed.lookups[s].push(shard.iter().map(|bag| bag.len() as u64).sum());
                routed.hedgeable[s].push(all_repl[s]);
            }
        }
    }
    for (w, b) in out.iter_mut().zip(builders) {
        w.trace = b.finish(trace.rows_per_table, trace.bag_size);
    }
    (out, routed)
}

/// What one cluster run measured.
#[derive(Debug, Clone, Default)]
pub struct ClusterMetrics {
    /// Queries served (each counted once, however many shards it hit).
    pub queries: u64,
    /// Per-query enqueue→merged-response latency.
    pub latency: LatencyHist,
    /// Completion of the last merged response, ns.
    pub makespan_ns: u64,
    /// Bytes moved over the shared aggregation link (zero when every
    /// query was single-shard).
    pub agg_bytes: u64,
    /// Mean shards participating per query (1.0 = no sharding overhead,
    /// `n_shards` = full scatter).
    pub mean_fanout: f64,
    /// Exact merged functional checksum: the f64 partial-sum merge
    /// summed over every query — bit-identical across shard counts and
    /// policies (see the module docs).
    pub checksum: f64,
    /// Per-query exact checksums, indexed by qid (the shard-invariance
    /// tests compare these bitwise across shard counts).
    pub query_checksums: Vec<f64>,
    /// Each node's own serving metrics, shard-index order.
    pub per_node: Vec<ServingMetrics>,
    /// Per-tenant splits of the *merged* results, tenant-index order:
    /// a tenant's `queries`/`latency` cover its answered queries
    /// (enqueue → merged response), its `shed` counts queries with no
    /// answer at all (shed everywhere or lost). Empty when the workload
    /// was untagged ([`RoutedStream::tenants`] empty — e.g. the
    /// materialized path); the `wait` split stays empty (queueing is a
    /// node-local quantity, see
    /// [`ServingMetrics::per_tenant`](super::serving::ServingMetrics::per_tenant)).
    pub per_tenant: Vec<TenantServing>,
    /// Queries answered with every offered lookup (full coverage).
    pub fully_served: u64,
    /// Queries answered with at least one lookup missing (routing
    /// loss, shed participation, or dropped partial).
    pub degraded: u64,
    /// Queries every participating shard shed — no answer at all.
    pub shed: u64,
    /// Queries with no live participant at arrival — no answer at all.
    pub lost: u64,
    /// Cross-shard partials that missed the per-query timeout.
    pub timeouts: u64,
    /// Timed-out partials answered by a deterministic replica hedge.
    pub hedges: u64,
    /// Lookups rerouted from a dead owner to a replica shard.
    pub failovers: u64,
    /// Lookups the workload offered across all queries.
    pub total_lookups: u64,
    /// Lookups that made it into some merged answer.
    pub served_lookups: u64,
    /// Mean per-query coverage (served/offered lookups), averaged over
    /// every offered query — unanswered queries count as zero.
    pub mean_coverage: f64,
}

impl ClusterMetrics {
    /// Achieved cluster throughput in queries per second.
    pub fn achieved_qps(&self) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            self.queries as f64 * 1e9 / self.makespan_ns as f64
        }
    }

    /// Fraction of offered queries answered at full coverage — the SLO
    /// the `cluster_faults` frontier bars on. `1.0` when nothing was
    /// offered.
    pub fn availability(&self) -> f64 {
        if self.queries == 0 {
            1.0
        } else {
            self.fully_served as f64 / self.queries as f64
        }
    }
}

/// N serving nodes plus the router-side merge state.
pub struct SlsCluster {
    cfg: ClusterConfig,
    nodes: Vec<SlsSystem>,
}

impl SlsCluster {
    /// Builds `cfg.n_shards` idle nodes from the node configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.n_shards` is zero (and as [`SlsSystem::new`] for a
    /// degenerate node config).
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(cfg.n_shards > 0, "a cluster needs at least one shard");
        let nodes = (0..cfg.n_shards)
            .map(|_| SlsSystem::new(cfg.node.clone()))
            .collect();
        SlsCluster { cfg, nodes }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Serves `trace` open-loop across the cluster: build the
    /// placement, route per-shard workloads, run every node's
    /// [`run_open_loop`](SlsSystem::run_open_loop) against the shared
    /// arrival stream, and merge (timing plane + exact functional
    /// plane). Equivalent to running the shards on separate workers and
    /// calling [`merge_cluster`] — which is exactly what the bench
    /// runner's sub-point path does.
    ///
    /// # Panics
    ///
    /// Panics as [`run_open_loop`](SlsSystem::run_open_loop) would (bad
    /// arrival stream, trace exceeding the model).
    pub fn run_open_loop(&mut self, trace: &Trace, arrivals: &[SimTime]) -> ClusterMetrics {
        let placement = ShardPlacement::build(&self.cfg, trace);
        let (shards, routed) = shard_workloads(&placement, &self.cfg.faults, trace, arrivals);
        let cfg = &self.cfg;
        let per_node: Vec<ServingMetrics> = self
            .nodes
            .iter_mut()
            .zip(&shards)
            .enumerate()
            .map(|(s, (node, w))| {
                node.set_slowdowns(cfg.faults.slow_intervals(s as u16));
                node.run_open_loop(&w.trace, &w.arrivals)
            })
            .collect();
        let completions: Vec<&[SimTime]> = per_node.iter().map(|m| &m.completion[..]).collect();
        let makespans: Vec<u64> = per_node.iter().map(|m| m.makespan_ns).collect();
        // Nodes shed by *local* qid; the merge keys on global qids.
        let sheds: Vec<Vec<u64>> = per_node
            .iter()
            .enumerate()
            .map(|(s, pm)| {
                pm.shed_qids
                    .iter()
                    .map(|&lq| routed.qids[s][lq as usize])
                    .collect()
            })
            .collect();
        let shed_refs: Vec<&[u64]> = sheds.iter().map(Vec::as_slice).collect();
        let mut merged = merge_cluster(
            &self.cfg,
            &placement,
            trace,
            &routed,
            &completions,
            &shed_refs,
            &makespans,
        );
        merged.per_node = per_node;
        merged
    }

    /// Serves a lazy [`QueryStream`] across the cluster with bounded
    /// routing memory: each query is routed incrementally
    /// ([`route_stream`]) into recycled per-shard sub-bag buffers and
    /// pushed straight into every participating node's streaming
    /// open-loop session ([`SlsSystem::open_loop_push`]) — no
    /// per-shard sub-trace is ever materialized. Byte-identical to
    /// [`Self::run_open_loop`] on the stream's materialized trace and
    /// arrival vector, including the exact functional checksums (the
    /// merge replays a clone of the stream).
    ///
    /// # Panics
    ///
    /// Panics if `stream` is not at position 0, or as
    /// [`SlsSystem::open_loop_begin`] would for a degenerate stream.
    pub fn run_open_loop_streamed(&mut self, stream: &mut QueryStream) -> ClusterMetrics {
        self.run_streamed_inner(stream)
    }

    /// Serves a multi-tenant [`tracegen::TenantMixStream`] across the
    /// cluster: the streamed path with every query carrying its tenant
    /// tag, so both the per-node [`ServingMetrics::per_tenant`] splits
    /// and the merged [`ClusterMetrics::per_tenant`] split are filled.
    ///
    /// # Panics
    ///
    /// As [`Self::run_open_loop_streamed`].
    pub fn run_open_loop_mix(&mut self, mix: &mut tracegen::TenantMixStream) -> ClusterMetrics {
        self.run_streamed_inner(mix)
    }

    fn run_streamed_inner<S: TaggedQuerySource>(&mut self, stream: &mut S) -> ClusterMetrics {
        assert_eq!(
            stream.position(),
            0,
            "a streamed cluster run consumes a fresh stream"
        );
        let placement = ShardPlacement::build_streamed(&self.cfg, stream);
        let replay = stream.clone();
        let n_tables = stream.n_tables();
        for (s, node) in self.nodes.iter_mut().enumerate() {
            node.set_slowdowns(self.cfg.faults.slow_intervals(s as u16));
            node.open_loop_begin(n_tables, OpenLoopOpts::default());
        }
        let nodes = &mut self.nodes;
        let routed = route_stream(
            &placement,
            &self.cfg.faults,
            stream,
            |s, tenant, at, sub| {
                nodes[s].open_loop_push_tagged(at, tenant, sub);
            },
        );
        let per_node: Vec<ServingMetrics> = self
            .nodes
            .iter_mut()
            .map(|node| node.open_loop_finish())
            .collect();
        let completions: Vec<&[SimTime]> = per_node.iter().map(|m| &m.completion[..]).collect();
        let makespans: Vec<u64> = per_node.iter().map(|m| m.makespan_ns).collect();
        // Nodes shed by *local* qid; the merge keys on global qids.
        let sheds: Vec<Vec<u64>> = per_node
            .iter()
            .enumerate()
            .map(|(s, pm)| {
                pm.shed_qids
                    .iter()
                    .map(|&lq| routed.qids[s][lq as usize])
                    .collect()
            })
            .collect();
        let shed_refs: Vec<&[u64]> = sheds.iter().map(Vec::as_slice).collect();
        let mut merged = merge_streamed(
            &self.cfg,
            &placement,
            &replay,
            &routed,
            &completions,
            &shed_refs,
            &makespans,
        );
        merged.per_node = per_node;
        merged
    }
}

/// The functional embedding tables of `model` (base address zero — the
/// procedural values depend only on `(table, row, element)`).
pub fn functional_tables(model: &dlrm::ModelConfig) -> Vec<EmbeddingTable> {
    (0..model.n_tables)
        .map(|t| EmbeddingTable::new(t, model.emb_num, model.emb_dim, 0))
        .collect()
}

/// The exact merged embedding of one bag under `placement`: per-shard
/// f64 partial sums (each shard's rows in bag order), merged in fixed
/// shard-index order. Bit-identical to
/// [`dlrm::sls::sls_reference_exact`] on the whole bag for every shard
/// count and policy — the exactness argument in the module docs.
pub fn merged_bag_embedding(
    placement: &ShardPlacement,
    table: &EmbeddingTable,
    table_idx: u32,
    bag: &[u64],
) -> Vec<f64> {
    merged_bag_embedding_at(
        placement,
        &FaultSchedule::none(placement.n_shards),
        SimTime::ZERO,
        &[],
        table,
        table_idx,
        bag,
    )
}

/// Fault-aware variant of [`merged_bag_embedding`]: routes the bag at
/// instant `at` under `faults` ([`ShardPlacement::route_bag_at`]) and
/// merges only the surviving partials — rows routed to no live shard
/// are skipped, as are the `excluded` shards' partial sums (the timing
/// merge's shed and timed-out participations). With the empty schedule
/// and no exclusions this *is* [`merged_bag_embedding`] bitwise:
/// dropping whole partials never re-associates the surviving ones, so
/// a full-coverage answer under faults is bit-identical to the
/// fault-free merge.
pub fn merged_bag_embedding_at(
    placement: &ShardPlacement,
    faults: &FaultSchedule,
    at: SimTime,
    excluded: &[u16],
    table: &EmbeddingTable,
    table_idx: u32,
    bag: &[u64],
) -> Vec<f64> {
    let dim = table.dim() as usize;
    let mut route = Vec::new();
    placement.route_bag_at(table_idx, bag, at, faults, &mut route);
    let mut merged = vec![0.0f64; dim];
    let mut partial = vec![0.0f64; dim];
    for shard in 0..placement.n_shards {
        if excluded.contains(&shard) {
            continue;
        }
        partial.iter_mut().for_each(|v| *v = 0.0);
        let mut any = false;
        for (&row, &s) in bag.iter().zip(&route) {
            if s == shard {
                dlrm::sls::accumulate_row_exact(&mut partial, table, row, 1.0);
                any = true;
            }
        }
        if any {
            for (m, p) in merged.iter_mut().zip(&partial) {
                *m += p;
            }
        }
    }
    merged
}

/// The exact per-query checksums of the first `n_queries` samples:
/// each query's merged embeddings ([`merged_bag_embedding`]) summed
/// over tables and elements. Shard-count- and policy-invariant bitwise.
pub fn query_checksums(
    placement: &ShardPlacement,
    tables: &[EmbeddingTable],
    trace: &Trace,
    n_queries: usize,
) -> Vec<f64> {
    let arrivals = vec![SimTime::ZERO; n_queries];
    query_checksums_at(
        placement,
        &FaultSchedule::none(placement.n_shards),
        &arrivals,
        &[],
        tables,
        trace,
    )
}

/// Fault-aware per-query checksums: each query's bags are routed at
/// its arrival instant under `faults` and merged without the
/// `excluded` participations `(qid, shard)` — the qid-ascending shed
/// and dropped-partial record the timing merge emits. Full-coverage
/// queries are bit-identical to the fault-free [`query_checksums`];
/// an entirely unanswered query checksums to `0.0`.
pub fn query_checksums_at(
    placement: &ShardPlacement,
    faults: &FaultSchedule,
    arrivals: &[SimTime],
    excluded: &[(u64, u16)],
    tables: &[EmbeddingTable],
    trace: &Trace,
) -> Vec<f64> {
    let mut cursor = 0usize;
    let mut skip: Vec<u16> = Vec::new();
    arrivals
        .iter()
        .enumerate()
        .map(|(qid, &at)| {
            skip.clear();
            while cursor < excluded.len() && excluded[cursor].0 < qid as u64 {
                cursor += 1;
            }
            while cursor < excluded.len() && excluded[cursor].0 == qid as u64 {
                skip.push(excluded[cursor].1);
                cursor += 1;
            }
            let batch = qid / trace.batch_size as usize;
            let sample = (qid % trace.batch_size as usize) as u32;
            tables
                .iter()
                .enumerate()
                .map(|(t, table)| {
                    merged_bag_embedding_at(
                        placement,
                        faults,
                        at,
                        &skip,
                        table,
                        t as u32,
                        trace.bag(batch, t as u32, sample),
                    )
                    .iter()
                    .sum::<f64>()
                })
                .sum()
        })
        .collect()
}

/// Merges per-node serving runs into cluster metrics. `completions[s]`
/// is node `s`'s run-relative per-query completion vector
/// ([`ServingMetrics::completion`]), local-qid order (shed queries
/// included — their entry is the arrival instant), `sheds[s]` the
/// *global* qids node `s` shed (ascending), and `node_makespans[s]`
/// its [`ServingMetrics::makespan_ns`].
///
/// Timing plane: queries merge in qid order, shards ascending. The
/// query's *home* shard (lowest participating index that did not shed
/// it) answers directly; every other participant's partial — one
/// response of `tables_touched × row_bytes` — serializes over the
/// shared aggregation [`FlexBusLink`] and pays one
/// [`inter_switch_ns`](cxlsim::CxlParams::inter_switch_ns) hop, both
/// stretched by any active link-degradation fault. A partial landing
/// past [`ClusterConfig::partial_timeout_ns`] is hedged to a replica
/// (when one covers every row) or dropped, completing the query
/// degraded. The merged completion is the max over the home completion
/// and the landed partials. The cluster makespan is the instant the
/// fleet goes idle: the max over the node makespans (when every host
/// frees), raised to any cross-shard partial that lands later — so a
/// 1-shard cluster's makespan is *exactly* its node's.
///
/// Functional plane: [`query_checksums_at`] under the same placement,
/// fault schedule and exclusion record — full-coverage answers are
/// bit-identical to the fault-free merge.
///
/// # Panics
///
/// Panics if the routed/completion/shed/makespan shapes disagree.
#[allow(clippy::too_many_arguments)]
pub fn merge_cluster(
    cfg: &ClusterConfig,
    placement: &ShardPlacement,
    trace: &Trace,
    routed: &RoutedStream,
    completions: &[&[SimTime]],
    sheds: &[&[u64]],
    node_makespans: &[u64],
) -> ClusterMetrics {
    assert_eq!(
        routed.qids.len(),
        completions.len(),
        "one completion vector per shard"
    );
    assert_eq!(
        routed.qids.len(),
        node_makespans.len(),
        "one makespan per shard"
    );
    assert_eq!(routed.qids.len(), sheds.len(), "one shed list per shard");
    for (q, c) in routed.qids.iter().zip(completions) {
        assert_eq!(
            q.len(),
            c.len(),
            "completions must cover the shard's queries"
        );
    }
    let mut m = ClusterMetrics {
        queries: routed.arrivals.len() as u64,
        ..ClusterMetrics::default()
    };
    let excluded = merge_timing(cfg, routed, sheds, completions, node_makespans, &mut m);
    m.query_checksums = query_checksums_at(
        placement,
        &cfg.faults,
        &routed.arrivals,
        &excluded,
        &functional_tables(&cfg.node.model),
        trace,
    );
    m.checksum = m.query_checksums.iter().sum();
    m
}

/// The shared timing-plane merge: queries in qid order, shards
/// ascending, home shard (lowest participating index that did not shed
/// the query) answering directly and every other live participant's
/// partial serializing over the aggregation link plus one inter-node
/// hop — link-degradation faults stretch both, and partials past the
/// per-query timeout are hedged or dropped. Fills the timing and
/// resilience counters of `m` and returns the excluded participations
/// `(qid, shard)` — shed or dropped — qid-ascending, shards ascending
/// within a qid, for the functional merge to skip.
fn merge_timing(
    cfg: &ClusterConfig,
    routed: &RoutedStream,
    sheds: &[&[u64]],
    completions: &[&[SimTime]],
    node_makespans: &[u64],
    m: &mut ClusterMetrics,
) -> Vec<(u64, u16)> {
    let faulty = !cfg.faults.is_none();
    let mut link = FlexBusLink::new(&cfg.node.cxl);
    let hop = SimDuration::from_ns(cfg.node.cxl.inter_switch_ns);
    let row_bytes = cfg.node.model.row_bytes();
    let n_shards = routed.qids.len();
    let mut cursor = vec![0usize; n_shards];
    let mut shed_cursor = vec![0usize; n_shards];
    let mut excluded: Vec<(u64, u16)> = Vec::new();
    let mut fanout_sum = 0u64;
    let mut coverage_sum = 0.0f64;
    let mut makespan = SimTime::from_ns(node_makespans.iter().copied().max().unwrap_or(0));
    for (qid, &arrival) in routed.arrivals.iter().enumerate() {
        let mut done: Option<SimTime> = None;
        let mut participations = 0u64;
        let mut lost_rows = routed.lost_lookups[qid];
        for s in 0..n_shards {
            let li = cursor[s];
            if li >= routed.qids[s].len() || routed.qids[s][li] != qid as u64 {
                continue;
            }
            cursor[s] += 1;
            participations += 1;
            fanout_sum += 1;
            while shed_cursor[s] < sheds[s].len() && sheds[s][shed_cursor[s]] < qid as u64 {
                shed_cursor[s] += 1;
            }
            if shed_cursor[s] < sheds[s].len() && sheds[s][shed_cursor[s]] == qid as u64 {
                // The node refused this participation: its rows are
                // forfeit and its partial never merges.
                lost_rows += routed.lookups[s][li];
                excluded.push((qid as u64, s as u16));
                continue;
            }
            let node_done = completions[s][li];
            done = Some(match done {
                // Home shard: the lowest participating index that did
                // not shed, answering directly (no hop — a 1-shard
                // cluster adds nothing).
                None => node_done,
                Some(prev) => {
                    let mut bytes = routed.touched[s][li] * row_bytes;
                    let mut part_hop = hop;
                    if faulty {
                        let lm = cfg.faults.link_mult(node_done);
                        if lm > 1.0 {
                            bytes = (bytes as f64 * lm).ceil() as u64;
                            part_hop =
                                SimDuration::from_ns((hop.as_ns() as f64 * lm).ceil() as u64);
                        }
                    }
                    let landed = link.transfer(node_done, bytes) + part_hop;
                    // Cross-shard partials can land after every host
                    // has gone idle; they extend the fleet makespan
                    // (the bytes cross the link whether or not the
                    // router still wants them).
                    makespan = makespan.max(landed);
                    match cfg.partial_timeout_ns {
                        Some(t) if landed.saturating_since(arrival).as_ns() > t => {
                            m.timeouts += 1;
                            if routed.hedgeable[s][li] {
                                // Deterministic hedge: some replica
                                // shard holds every row of the partial,
                                // so the merge books one re-issued
                                // response landing a hop after the
                                // deadline (the retry bytes skip the
                                // shared link — a deliberate
                                // simplification).
                                m.hedges += 1;
                                let hedged = arrival + SimDuration::from_ns(t) + hop;
                                makespan = makespan.max(hedged);
                                prev.max(hedged)
                            } else {
                                // No replica covers it: drop the
                                // partial and answer degraded.
                                lost_rows += routed.lookups[s][li];
                                excluded.push((qid as u64, s as u16));
                                prev
                            }
                        }
                        _ => prev.max(landed),
                    }
                }
            });
        }
        let total = routed.total_lookups[qid];
        m.total_lookups += total;
        // Per-tenant split of the merged outcome, for tagged workloads.
        let tenant_slot = routed.tenants.get(qid).map(|&t| {
            let idx = t as usize;
            if m.per_tenant.len() <= idx {
                m.per_tenant.resize_with(idx + 1, TenantServing::default);
            }
            idx
        });
        match done {
            None if participations == 0 => m.lost += 1,
            None => m.shed += 1,
            Some(done) => {
                let latency = done.saturating_since(arrival);
                m.latency.record(latency);
                if let Some(idx) = tenant_slot {
                    m.per_tenant[idx].queries += 1;
                    m.per_tenant[idx].latency.record(latency);
                }
                let served = total - lost_rows;
                m.served_lookups += served;
                if lost_rows == 0 {
                    m.fully_served += 1;
                } else {
                    m.degraded += 1;
                }
                if total > 0 {
                    coverage_sum += served as f64 / total as f64;
                }
            }
        }
        if done.is_none() {
            if let Some(idx) = tenant_slot {
                m.per_tenant[idx].shed += 1;
            }
        }
    }
    m.makespan_ns = makespan.as_ns();
    m.agg_bytes = link.total_bytes();
    m.failovers = routed.failovers;
    m.mean_fanout = if routed.arrivals.is_empty() {
        0.0
    } else {
        fanout_sum as f64 / routed.arrivals.len() as f64
    };
    m.mean_coverage = if routed.arrivals.is_empty() {
        0.0
    } else {
        coverage_sum / routed.arrivals.len() as f64
    };
    excluded
}

/// The routing record of one pass over the workload: everything the
/// timing merge needs that a lazy stream cannot replay cheaply.
/// Per-query state is O(participations) scalars — the routed *bags*
/// are handed to the sink and recycled, never stored. Both the
/// materialized ([`shard_workloads`]) and streamed ([`route_stream`])
/// paths produce one, so the merge is shared.
#[derive(Debug, Clone, Default)]
pub struct RoutedStream {
    /// Arrival instant of every query, qid order.
    pub arrivals: Vec<SimTime>,
    /// Global qid of each of shard `s`'s local queries, ascending.
    pub qids: Vec<Vec<u64>>,
    /// Tables shard `s` touches for each of its local queries (aligned
    /// with `qids[s]`): the partial-response size of the timing merge.
    pub touched: Vec<Vec<u64>>,
    /// Rows shard `s` serves for each of its local queries (aligned
    /// with `qids[s]`): the coverage a dropped partial forfeits.
    pub lookups: Vec<Vec<u64>>,
    /// Whether every row of the participation is replicated (aligned
    /// with `qids[s]`): a timed-out partial can be hedged to a replica
    /// shard only when some other shard holds all of its rows.
    pub hedgeable: Vec<Vec<bool>>,
    /// Rows each query offered, qid order.
    pub total_lookups: Vec<u64>,
    /// Rows each query lost at routing time (dead owner, no replica),
    /// qid order.
    pub lost_lookups: Vec<u64>,
    /// Lookups that failed over from a dead owner to a replica shard.
    pub failovers: u64,
    /// Each query's tenant tag, qid order. Empty (the default, and what
    /// the materialized [`shard_workloads`] path produces) means the
    /// workload is untagged and the merge skips the per-tenant split.
    pub tenants: Vec<u16>,
}

/// A routable tagged query source: what the cluster router and the
/// functional-checksum replay need from a lazy stream. Single-tenant
/// [`QueryStream`]s tag every query tenant 0; a
/// [`tracegen::TenantMixStream`] carries its own tags.
pub trait TaggedQuerySource: Clone {
    /// Advances to the next query, returning `(qid, tenant, arrival)`.
    fn next_tagged(&mut self) -> Option<(u64, u16, SimTime)>;
    /// The current query's bag for `table` (valid until the next
    /// [`Self::next_tagged`]).
    fn bag(&self, table: u32) -> &[u64];
    /// Tables per query.
    fn n_tables(&self) -> u32;
    /// Queries emitted so far.
    fn position(&self) -> u64;
}

impl TaggedQuerySource for QueryStream {
    fn next_tagged(&mut self) -> Option<(u64, u16, SimTime)> {
        self.next_query().map(|(qid, at)| (qid, 0, at))
    }
    fn bag(&self, table: u32) -> &[u64] {
        QueryStream::bag(self, table)
    }
    fn n_tables(&self) -> u32 {
        QueryStream::n_tables(self)
    }
    fn position(&self) -> u64 {
        QueryStream::position(self)
    }
}

impl TaggedQuerySource for tracegen::TenantMixStream {
    fn next_tagged(&mut self) -> Option<(u64, u16, SimTime)> {
        self.next_query()
    }
    fn bag(&self, table: u32) -> &[u64] {
        tracegen::TenantMixStream::bag(self, table)
    }
    fn n_tables(&self) -> u32 {
        tracegen::TenantMixStream::n_tables(self)
    }
    fn position(&self) -> u64 {
        tracegen::TenantMixStream::position(self)
    }
}

/// Consumes `stream`, routing each query's bags across the placement's
/// shards exactly as [`shard_workloads`] does, but incrementally: the
/// per-shard sub-bags live in one recycled `shards × tables` buffer
/// set, and each participating shard's sub-bags are handed to
/// `sink(shard, arrival, sub_bags)` (table-indexed, empty for
/// untouched tables) before the next query overwrites them. Routing
/// consults `faults` at each arrival ([`ShardPlacement::route_bag_at`]
/// — pass the empty schedule for the historical behaviour). Returns
/// the [`RoutedStream`] record the merge keys on.
pub fn route_stream<S, F>(
    placement: &ShardPlacement,
    faults: &FaultSchedule,
    stream: &mut S,
    mut sink: F,
) -> RoutedStream
where
    S: TaggedQuerySource,
    F: FnMut(usize, u16, SimTime, &[Vec<u64>]),
{
    let k = placement.n_shards as usize;
    let n_tables = stream.n_tables();
    let mut routed = RoutedStream {
        qids: vec![Vec::new(); k],
        touched: vec![Vec::new(); k],
        lookups: vec![Vec::new(); k],
        hedgeable: vec![Vec::new(); k],
        ..RoutedStream::default()
    };
    let mut sub: Vec<Vec<Vec<u64>>> = vec![vec![Vec::new(); n_tables as usize]; k];
    let mut route: Vec<u16> = Vec::new();
    let mut all_repl: Vec<bool> = vec![true; k];
    while let Some((qid, tenant, at)) = stream.next_tagged() {
        routed.arrivals.push(at);
        routed.tenants.push(tenant);
        for shard in sub.iter_mut() {
            for bag in shard.iter_mut() {
                bag.clear();
            }
        }
        all_repl.iter_mut().for_each(|r| *r = true);
        let mut total = 0u64;
        let mut lost = 0u64;
        for t in 0..n_tables {
            let bag = stream.bag(t);
            routed.failovers += placement.route_bag_at(t, bag, at, faults, &mut route);
            total += bag.len() as u64;
            for (&row, &s) in bag.iter().zip(&route) {
                if s == ShardPlacement::LOST {
                    lost += 1;
                    continue;
                }
                sub[s as usize][t as usize].push(row);
                all_repl[s as usize] &= placement.is_replicated(t, row);
            }
        }
        routed.total_lookups.push(total);
        routed.lost_lookups.push(lost);
        for (s, shard) in sub.iter().enumerate() {
            let tables_touched = shard.iter().filter(|bag| !bag.is_empty()).count() as u64;
            if tables_touched > 0 {
                sink(s, tenant, at, shard);
                routed.qids[s].push(qid);
                routed.touched[s].push(tables_touched);
                routed.lookups[s].push(shard.iter().map(|bag| bag.len() as u64).sum());
                routed.hedgeable[s].push(all_repl[s]);
            }
        }
    }
    routed
}

/// Merges per-node streamed serving runs into cluster metrics — the
/// streamed counterpart of [`merge_cluster`], byte-identical on the
/// same workload (faults, sheds and all). `stream` must be a *fresh*
/// (position-0) clone of the routed stream: the functional plane
/// replays it to compute the exact per-query checksums the
/// materialized path reads from the trace. `sheds[s]` is the global
/// qids node `s` shed, ascending.
///
/// # Panics
///
/// Panics if the routed/completion/shed/makespan shapes disagree, or
/// if `stream` is not at position 0.
#[allow(clippy::too_many_arguments)]
pub fn merge_streamed<S: TaggedQuerySource>(
    cfg: &ClusterConfig,
    placement: &ShardPlacement,
    stream: &S,
    routed: &RoutedStream,
    completions: &[&[SimTime]],
    sheds: &[&[u64]],
    node_makespans: &[u64],
) -> ClusterMetrics {
    assert_eq!(
        routed.qids.len(),
        completions.len(),
        "one completion vector per shard"
    );
    assert_eq!(
        routed.qids.len(),
        node_makespans.len(),
        "one makespan per shard"
    );
    assert_eq!(routed.qids.len(), sheds.len(), "one shed list per shard");
    for (q, c) in routed.qids.iter().zip(completions) {
        assert_eq!(
            q.len(),
            c.len(),
            "completions must cover the shard's queries"
        );
    }
    assert_eq!(stream.position(), 0, "checksum replay needs a fresh stream");
    let mut m = ClusterMetrics {
        queries: routed.arrivals.len() as u64,
        ..ClusterMetrics::default()
    };
    let excluded = merge_timing(cfg, routed, sheds, completions, node_makespans, &mut m);
    let tables = functional_tables(&cfg.node.model);
    let mut replay = stream.clone();
    let mut cursor = 0usize;
    let mut skip: Vec<u16> = Vec::new();
    m.query_checksums = (0..routed.arrivals.len())
        .map(|qid| {
            let (_, _, at) = replay.next_tagged().expect("stream shorter than the run");
            skip.clear();
            while cursor < excluded.len() && excluded[cursor].0 < qid as u64 {
                cursor += 1;
            }
            while cursor < excluded.len() && excluded[cursor].0 == qid as u64 {
                skip.push(excluded[cursor].1);
                cursor += 1;
            }
            tables
                .iter()
                .enumerate()
                .map(|(t, table)| {
                    merged_bag_embedding_at(
                        placement,
                        &cfg.faults,
                        at,
                        &skip,
                        table,
                        t as u32,
                        replay.bag(t as u32),
                    )
                    .iter()
                    .sum::<f64>()
                })
                .sum()
        })
        .collect();
    m.checksum = m.query_checksums.iter().sum();
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn placement(k: u16, policy: ShardPolicy) -> ShardPlacement {
        ShardPlacement {
            n_shards: k,
            n_tables: 8,
            policy,
            replicated: vec![Vec::new(); 8],
        }
    }

    #[test]
    fn table_partition_owns_contiguous_ranges() {
        let p = placement(4, ShardPolicy::TablePartition);
        let owners: Vec<u16> = (0..8).map(|t| p.owner(t, 0)).collect();
        assert_eq!(owners, [0, 0, 1, 1, 2, 2, 3, 3]);
        // Row-independent.
        assert_eq!(p.owner(5, 0), p.owner(5, 12345));
    }

    #[test]
    fn row_hash_scatters_across_shards() {
        let p = placement(4, ShardPolicy::RowHash);
        let mut seen = [false; 4];
        for row in 0..64 {
            seen[p.owner(0, row) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 rows must hit all 4 shards");
    }

    #[test]
    fn replicated_rows_co_route_with_the_bag() {
        let mut p = placement(4, ShardPolicy::RowHash);
        p.replicated[0] = vec![7];
        let bag = [3u64, 7, 11];
        let mut route = Vec::new();
        p.route_bag(0, &bag, &mut route);
        let pinned = p.owner(0, 3).min(p.owner(0, 11));
        assert_eq!(route, [p.owner(0, 3), pinned, p.owner(0, 11)]);
        // A bag of only the replicated row falls back to its owner.
        p.route_bag(0, &[7], &mut route);
        assert_eq!(route, [p.owner(0, 7)]);
    }

    #[test]
    fn one_shard_workload_reproduces_the_trace_bags() {
        let trace = tracegen::TraceSpec {
            distribution: tracegen::Distribution::Random,
            n_tables: 3,
            rows_per_table: 100,
            batch_size: 4,
            n_batches: 2,
            bag_size: 2,
            seed: 9,
        }
        .generate();
        let arrivals: Vec<SimTime> = (0..8).map(|i| SimTime::from_ns(i * 10)).collect();
        let p = ShardPlacement {
            n_shards: 1,
            n_tables: 3,
            policy: ShardPolicy::RowHash,
            replicated: vec![Vec::new(); 3],
        };
        let (shards, routed) = shard_workloads(&p, &FaultSchedule::none(1), &trace, &arrivals);
        assert_eq!(shards.len(), 1);
        assert_eq!(routed.failovers, 0);
        assert_eq!(routed.lost_lookups, vec![0; 8]);
        let w = &shards[0];
        assert_eq!(w.arrivals, arrivals);
        assert_eq!(w.qids, (0..8).collect::<Vec<u64>>());
        for qid in 0..8usize {
            let (b, s) = (qid / 4, (qid % 4) as u32);
            for t in 0..3 {
                assert_eq!(w.trace.bag(b, t, s), trace.bag(b, t, s));
            }
        }
    }

    #[test]
    fn workloads_partition_every_lookup() {
        let trace = tracegen::TraceSpec {
            distribution: tracegen::Distribution::Random,
            n_tables: 4,
            rows_per_table: 64,
            batch_size: 4,
            n_batches: 3,
            bag_size: 3,
            seed: 3,
        }
        .generate();
        let arrivals: Vec<SimTime> = (0..12).map(|i| SimTime::from_ns(i * 5)).collect();
        for policy in [ShardPolicy::RowHash, ShardPolicy::TablePartition] {
            let p = ShardPlacement {
                n_shards: 3,
                n_tables: 4,
                policy,
                replicated: vec![Vec::new(); 4],
            };
            let (shards, routed) = shard_workloads(&p, &FaultSchedule::none(3), &trace, &arrivals);
            let total: u64 = shards.iter().map(|w| w.trace.total_lookups()).sum();
            assert_eq!(routed.total_lookups.iter().sum::<u64>(), total);
            assert_eq!(total, 4 * 12 * 3, "lookups must partition exactly");
            let queries: usize = shards.iter().map(|w| w.qids.len()).sum();
            assert!(queries >= 12, "every query is served somewhere");
        }
    }
}
