//! The physical plant: hosts, fabric switches, CXL Type 3 devices, the
//! remote socket, and the address-spreading hash — everything the
//! pipeline stages contend on.

#![deny(missing_docs)]

use cxlsim::{CxlParams, FabricSwitch, FlexBusLink, PortId, SwitchId, Topology, Type3Device};
use memsim::{DramConfig, DramDevice};
use simkit::SimTime;

use super::config::{ComputeSite, SystemConfig};
use crate::acr::AccumulateLogic;
use crate::buffer::OnSwitchBuffer;
use crate::forward::ForwardController;
use crate::iir::IngressRegistry;
use crate::ooo::AccumEngine;

/// ACR concurrent-cluster capacity.
pub(crate) const ACR_CAPACITY: usize = 128;
/// IIR in-flight capacity.
pub(crate) const IIR_CAPACITY: usize = 512;
/// Swap registers in the OoO engine.
pub(crate) const SWAP_REGS: usize = 8;

/// Per-host simulation state: lookup cores, FlexBus links, local DRAM,
/// and (for RecNMP) the DIMM cache.
#[derive(Clone)]
pub(crate) struct HostCtx {
    /// Next-free time of each lookup core.
    pub cores: Vec<SimTime>,
    /// Host→switch request link.
    pub req_link: FlexBusLink,
    /// Switch→host response link.
    pub rsp_link: FlexBusLink,
    /// Host-local DRAM.
    pub dram: DramDevice,
    /// RecNMP's DIMM-side cache, when configured.
    pub dimm_cache: Option<OnSwitchBuffer>,
    /// Time this host finishes its last accepted batch.
    pub next_free: SimTime,
}

/// Per-switch simulation state: the switch fabric model plus the PIFS
/// process-core blocks living inside it.
#[derive(Clone)]
pub(crate) struct SwitchCtx {
    /// The fabric switch (transit timing, CNV flag).
    pub sw: FabricSwitch,
    /// Out-of-order (or in-order) accumulation engine.
    pub engine: AccumEngine,
    /// On-switch SRAM row buffer, when configured.
    pub buffer: Option<OnSwitchBuffer>,
    /// Instruction Ingress Registry.
    pub iir: IngressRegistry,
    /// Accumulate Configuration Register/Logic.
    pub acr: AccumulateLogic,
    /// Multi-switch forward controller.
    pub fc: ForwardController,
    /// Instruction decode pipeline occupancy.
    pub decode_free: SimTime,
}

/// The composed hardware plant of one simulated system.
///
/// `Clone` snapshots the entire plant — every link cursor, DRAM bank
/// timer, buffer and process-core register — which is what makes a
/// [`SimCheckpoint`](crate::engine::checkpoint::SimCheckpoint) a pure
/// deep copy.
#[derive(Clone)]
pub(crate) struct Plant {
    /// Host/switch/device adjacency and hop latencies.
    pub topo: Topology,
    /// All fabric switches.
    pub switches: Vec<SwitchCtx>,
    /// All CXL Type 3 devices.
    pub devices: Vec<Type3Device>,
    /// All hosts.
    pub hosts: Vec<HostCtx>,
    /// Link to the remote socket.
    pub remote_link: FlexBusLink,
    /// Remote-socket DRAM (partially populated channels, §III).
    pub remote_dram: DramDevice,
}

impl Plant {
    /// Builds the idle plant described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no devices, zero
    /// hosts, zero switches).
    pub(crate) fn build(cfg: &SystemConfig) -> Plant {
        assert!(cfg.n_hosts >= 1, "need at least one host");
        assert!(cfg.n_devices >= 1, "need at least one device");
        assert!(cfg.n_switches >= 1, "need at least one switch");

        let topo = if cfg.n_switches == 1 {
            Topology::single_switch(cfg.n_devices as usize, cfg.n_hosts as usize, cfg.cxl)
        } else {
            Topology::custom(
                cfg.n_switches,
                (0..cfg.n_devices)
                    .map(|d| SwitchId(d % cfg.n_switches))
                    .collect(),
                (0..cfg.n_hosts)
                    .map(|h| SwitchId(h % cfg.n_switches))
                    .collect(),
                cfg.cxl,
            )
        };

        let dim = cfg.model.emb_dim;
        let switches = (0..cfg.n_switches)
            .map(|s| {
                let mut sw = FabricSwitch::new(s, cfg.n_hosts as usize, cfg.cxl);
                for d in topo.devices_on(SwitchId(s)) {
                    sw.bind_device(PortId(d as u16));
                }
                SwitchCtx {
                    sw,
                    engine: AccumEngine::new(cfg.ooo, dim, SWAP_REGS),
                    buffer: if cfg.compute == ComputeSite::Switch {
                        cfg.buffer.map(|b| {
                            OnSwitchBuffer::new(b.policy, b.capacity_bytes, cfg.model.row_bytes())
                        })
                    } else {
                        None
                    },
                    iir: IngressRegistry::new(IIR_CAPACITY),
                    acr: AccumulateLogic::new(ACR_CAPACITY),
                    fc: ForwardController::new(),
                    decode_free: SimTime::ZERO,
                }
            })
            .collect();

        let devices = (0..cfg.n_devices)
            .map(|d| Type3Device::new(d, cfg.cxl))
            .collect();

        let hosts = (0..cfg.n_hosts)
            .map(|_| HostCtx {
                cores: vec![SimTime::ZERO; cfg.cores_per_host as usize],
                req_link: FlexBusLink::new(&cfg.cxl),
                rsp_link: FlexBusLink::new(&cfg.cxl),
                // The characterization host populates 12 DDR5 channels
                // per socket (§III); the scaled host keeps that width.
                dram: DramDevice::new(DramConfig {
                    org: memsim::DramOrg {
                        channels: 12,
                        ..memsim::DramOrg::table2_local()
                    },
                    ..DramConfig::ddr5_4800_local()
                }),
                dimm_cache: if cfg.compute == ComputeSite::Dimm {
                    cfg.buffer.map(|b| {
                        OnSwitchBuffer::new(b.policy, b.capacity_bytes, cfg.model.row_bytes())
                    })
                } else {
                    None
                },
                next_free: SimTime::ZERO,
            })
            .collect();

        Plant {
            topo,
            switches,
            devices,
            hosts,
            remote_link: FlexBusLink::new(&CxlParams {
                link_gbps: 32,
                port_latency_ns: 60,
                ..CxlParams::default()
            }),
            // Partial channel population: the §III observation that
            // accessing a slice of a remote socket's memory yields poor
            // effective bandwidth.
            remote_dram: DramDevice::new(DramConfig {
                org: memsim::DramOrg {
                    channels: 1,
                    ..memsim::DramOrg::table2_local()
                },
                ..DramConfig::ddr5_4800_local()
            }),
        }
    }
}

/// Spreads a (scaled-down) embedding address across the full physical
/// address space of a memory device. Scaled tables occupy a few MB,
/// which would alias onto a handful of DRAM bank-rows and serialize on
/// tRC — an artifact real multi-GB tables do not have. Hashing the
/// 256 B-aligned block index preserves intra-row locality while spreading
/// blocks over all banks, matching the bank-utilization of full-size
/// tables.
pub(crate) fn spread_addr(addr: u64) -> u64 {
    let block = addr / 256;
    let offset = addr % 256;
    let mut h = block.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 31;
    (h % (1 << 34)) / 256 * 256 + offset
}
