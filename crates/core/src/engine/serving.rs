//! The open-loop serving layer: timestamped query queue, batcher, and
//! streaming latency accounting.
//!
//! Closed-loop runs ([`SlsSystem::run_trace`]) feed batches back-to-back
//! and report aggregate runtime — load is whatever the engine absorbs.
//! Serving mode inverts that: queries arrive at externally generated
//! timestamps (see [`tracegen::arrival`]), wait in a FIFO queue, and a
//! [`QueryBatcher`] closes dynamic batches when either the batch fills
//! ([`ServingConfig::batch_size`]) or the oldest query has waited
//! [`ServingConfig::max_wait_ns`]. Each closed batch is dispatched to
//! the existing `Stage` pipeline (`engine/pipeline.rs`) as soon as
//! its host is free, and every query's enqueue→completion latency lands
//! in a streaming [`LatencyHist`] — the p50/p99 a latency-vs-QPS curve
//! plots.
//!
//! Everything here is deterministic: batch formation depends only on
//! the arrival timestamps and the batcher knobs, ties at the same
//! `SimTime` keep arrival (FIFO) order, and a timeout landing exactly
//! on an arrival's instant fires *before* that arrival is admitted
//! (deadline comparisons are inclusive).
//!
//! [`SlsSystem::run_trace`]: crate::system::SlsSystem::run_trace
//! [`tracegen::arrival`]: ../../../tracegen/arrival/index.html

#![deny(missing_docs)]

use std::collections::VecDeque;

use simkit::{LatencyHist, SimDuration, SimTime};

use super::controller::{ControllerPolicy, ServingController};
use super::metrics::{CounterOffsets, RunMetrics};

/// Open-loop batcher knobs (see [`SystemConfig::serving`]).
///
/// [`SystemConfig::serving`]: super::config::SystemConfig::serving
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingConfig {
    /// Queries per dispatched batch: a batch closes as soon as this
    /// many queries are pending.
    pub batch_size: u32,
    /// Maximum time the oldest pending query may wait before its batch
    /// closes part-full, ns.
    pub max_wait_ns: u64,
    /// Admission-control policy: which arrivals are shed instead of
    /// queued (`serving.shed_policy` knob).
    pub shed: ShedPolicy,
    /// The per-query latency SLA the deadline shedder admits against,
    /// ns (`serving.sla_us` knob). Unused by the other policies.
    pub sla_ns: u64,
    /// Runtime knob-adaptation policy (`serving.controller` knob). The
    /// default [`ControllerPolicy::Fixed`] never moves a knob and is
    /// byte-identical to a build without the controller.
    pub controller: ControllerPolicy,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            batch_size: 32,
            max_wait_ns: 50_000, // 50 µs: a few batch service times
            shed: ShedPolicy::None,
            sla_ns: 25_000, // the bench family's 25 µs p99 SLA
            controller: ControllerPolicy::Fixed,
        }
    }
}

/// SLA-aware admission control: when the serving queue is hopeless, an
/// arrival is *shed* — counted, never queued — so overload degrades
/// into lost answers at bounded latency instead of unbounded queueing.
///
/// [`ShedPolicy::None`] is the default and leaves the admission path
/// observationally identical to a build without shedding (the
/// fault-free byte-identity bar).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Admit everything (the historical behaviour).
    None,
    /// Shed when the batcher already holds `max_pending` queries: a
    /// queue-depth cap.
    QueueDepth {
        /// Pending-query ceiling; arrivals beyond it are shed.
        max_pending: u32,
    },
    /// Shed when even the least-loaded host's backlog already exceeds
    /// the SLA at the arrival instant — the query would blow its
    /// deadline before service *begins*, so answering it helps nobody.
    Deadline,
}

impl ShedPolicy {
    /// Parses the knob spelling `none | queue:<depth> | deadline`.
    /// Errors say why the spec was rejected.
    pub fn parse(spec: &str) -> Result<ShedPolicy, String> {
        let mut parts = spec.split(':');
        let head = parts.next().unwrap_or("").to_ascii_lowercase();
        let parsed = match head.as_str() {
            "none" => ShedPolicy::None,
            "deadline" => ShedPolicy::Deadline,
            "queue" => {
                let raw = parts
                    .next()
                    .ok_or_else(|| format!("shed policy {spec:?}: missing depth"))?;
                let depth = raw.parse::<u32>().map_err(|_| {
                    format!("shed policy {spec:?}: depth {raw:?} is not a positive integer")
                })?;
                if depth == 0 {
                    return Err(format!("shed policy {spec:?}: depth must be >= 1"));
                }
                ShedPolicy::QueueDepth { max_pending: depth }
            }
            other => {
                return Err(format!(
                    "unknown shed policy {other:?} (none|queue:<depth>|deadline)"
                ))
            }
        };
        if parts.next().is_some() {
            return Err(format!("shed policy {spec:?}: trailing arguments"));
        }
        Ok(parsed)
    }

    /// A short stable label for curve keys.
    pub fn label(&self) -> String {
        match *self {
            ShedPolicy::None => "none".to_string(),
            ShedPolicy::QueueDepth { max_pending } => format!("queue:{max_pending}"),
            ShedPolicy::Deadline => "deadline".to_string(),
        }
    }
}

/// One query waiting in (or dispatched from) the serving queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingQuery {
    /// Query id: the index into the arrival stream, which is also the
    /// index of the query's bags in the backing trace.
    pub qid: u64,
    /// Enqueue timestamp.
    pub arrival: SimTime,
}

/// A batch the batcher has closed, ready for dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadyBatch {
    /// The member queries, in arrival (FIFO) order.
    pub queries: Vec<PendingQuery>,
    /// The instant the batch closed: the triggering arrival's timestamp
    /// (full batch) or the oldest member's deadline (timeout). Dispatch
    /// starts at `max(close, host ready)`.
    pub close: SimTime,
}

/// Reusable buffers for the open-loop dispatch path — the serving-side
/// member of the unified scratch convention ([`EngineScratch`]): the
/// per-query completion times of the batch being dispatched and the
/// work-partition memo keep their capacity across batches and runs,
/// mirroring what [`BagScratch`](super::pipeline::BagScratch) does for
/// the per-bag path.
///
/// [`EngineScratch`]: super::pipeline::EngineScratch
#[derive(Debug, Default, Clone)]
pub(crate) struct ServingScratch {
    /// Per-query completion time of the batch being dispatched.
    pub q_done: Vec<SimTime>,
    /// Work-partition memo keyed by batch size. Reset at the start of
    /// every session: the layout also bakes in the stream's table count.
    pub parts_memo: Option<(u32, Vec<Vec<dlrm::query::WorkItem>>)>,
}

/// The query batcher: a FIFO of pending queries with fill and max-wait
/// close conditions.
///
/// Driver contract: before admitting an arrival at time `t`, call
/// [`Self::flush_due`]`(t)` until it returns `None` (a timeout strictly
/// before — or exactly at — `t` fires first); then [`Self::offer`] the
/// arrival. After the last arrival, drain with [`Self::flush_due`] at
/// `SimTime::MAX` (trailing queries fire at their deadline, exactly as
/// they would had more traffic followed).
#[derive(Debug, Clone)]
pub struct QueryBatcher {
    batch_size: usize,
    max_wait: SimDuration,
    pending: VecDeque<PendingQuery>,
}

impl QueryBatcher {
    /// Creates an empty batcher with `cfg`'s knobs.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.batch_size` is zero.
    pub fn new(cfg: &ServingConfig) -> Self {
        assert!(cfg.batch_size > 0, "serving batch size must be positive");
        QueryBatcher {
            batch_size: cfg.batch_size as usize,
            max_wait: SimDuration::from_ns(cfg.max_wait_ns),
            pending: VecDeque::new(),
        }
    }

    /// Number of queries currently pending.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no queries are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// The instant the oldest pending query's max-wait expires, or
    /// `None` when the queue is empty.
    pub fn deadline(&self) -> Option<SimTime> {
        self.pending.front().map(|q| q.arrival + self.max_wait)
    }

    /// Admits one arrival. Returns the closed batch when this arrival
    /// fills it (close time = `at`). Arrivals at the same `SimTime`
    /// keep their call order — the FIFO tie-break.
    pub fn offer(&mut self, qid: u64, at: SimTime) -> Option<ReadyBatch> {
        debug_assert!(
            self.deadline().is_none_or(|d| d > at),
            "flush_due must run before offer admits an arrival at {at}"
        );
        self.pending.push_back(PendingQuery { qid, arrival: at });
        (self.pending.len() >= self.batch_size).then(|| ReadyBatch {
            queries: self.pending.drain(..).collect(),
            close: at,
        })
    }

    /// Fires the max-wait timeout if it is due at `now` (inclusive):
    /// returns the part-full batch closed at its deadline, or `None`
    /// when the queue is empty or the oldest query can still wait. An
    /// empty tick (`flush_due` on an empty batcher) is a no-op.
    pub fn flush_due(&mut self, now: SimTime) -> Option<ReadyBatch> {
        let deadline = self.deadline()?;
        (deadline <= now).then(|| ReadyBatch {
            queries: self.pending.drain(..).collect(),
            close: deadline,
        })
    }

    /// Retunes the close conditions mid-stream (the serving
    /// controller's lever). Applies from the next close decision; the
    /// already-pending queries keep their arrival timestamps, so a
    /// shrunk `max_wait` may make the oldest pending query immediately
    /// due — the driver's next `flush_due` fires it.
    pub(crate) fn set_knobs(&mut self, batch_size: u32, max_wait_ns: u64) {
        assert!(batch_size > 0, "serving batch size must be positive");
        self.batch_size = batch_size as usize;
        self.max_wait = SimDuration::from_ns(max_wait_ns);
    }
}

/// What one open-loop serving run measured.
#[derive(Debug, Clone, Default)]
pub struct ServingMetrics {
    /// Queries served.
    pub queries: u64,
    /// Dynamic batches dispatched.
    pub batches: u64,
    /// End of the last batch (including exposed migration overhead) —
    /// the run's makespan, ns.
    pub makespan_ns: u64,
    /// Per-query enqueue→completion latency.
    pub latency: LatencyHist,
    /// Per-query enqueue→dispatch wait (queueing + batching delay; the
    /// remainder of `latency` is pipeline service time).
    pub wait: LatencyHist,
    /// Mean batch fill as a fraction of the configured batch size (1.0
    /// = every batch closed full, lower = max-wait timeouts fired).
    pub mean_batch_fill: f64,
    /// Run-relative completion instant of each query, indexed by qid.
    /// `completion[q] - arrivals[q]` is the latency the histogram
    /// recorded; the cluster layer keys its cross-node merge on these
    /// (a sharded query completes when its last shard's completion —
    /// plus the inter-node hop — lands). Empty when the session ran
    /// with [`OpenLoopOpts::record_completion`] off.
    pub completion: Vec<SimTime>,
    /// Arrival-time-windowed latency summaries, in window order. Empty
    /// unless the session ran with [`OpenLoopOpts::window_ns`] set.
    pub windows: Vec<WindowSummary>,
    /// Arrivals the admission controller shed (never queued, no
    /// latency recorded). `queries` counts only served queries, so
    /// `queries + shed` is the offered load.
    pub shed: u64,
    /// The shed queries' ids, ascending. With
    /// [`OpenLoopOpts::record_completion`] on, a shed qid's
    /// [`completion`](Self::completion) entry is its arrival instant —
    /// the slot exists (downstream merges index by qid) but spans zero
    /// service.
    pub shed_qids: Vec<u64>,
    /// Per-tenant splits, tenant-index order. Untagged pushes
    /// ([`SlsSystem::open_loop_push`]) land on tenant 0, so a
    /// single-tenant run has one entry mirroring the whole-run
    /// aggregates.
    ///
    /// [`SlsSystem::open_loop_push`]: crate::system::SlsSystem::open_loop_push
    pub per_tenant: Vec<TenantServing>,
    /// Page-management epochs the run's controller admitted (0 when the
    /// scheme has no page management).
    pub pm_epochs: u64,
    /// The underlying pipeline metrics for the whole run.
    pub run: RunMetrics,
}

/// One tenant's slice of a serving run (see
/// [`ServingMetrics::per_tenant`]).
#[derive(Debug, Clone, Default)]
pub struct TenantServing {
    /// Queries this tenant had served.
    pub queries: u64,
    /// This tenant's arrivals the admission controller shed.
    pub shed: u64,
    /// This tenant's enqueue→completion latencies.
    pub latency: LatencyHist,
    /// This tenant's enqueue→dispatch waits.
    pub wait: LatencyHist,
}

impl ServingMetrics {
    /// Achieved throughput in queries per second (0.0 when empty).
    pub fn achieved_qps(&self) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            self.queries as f64 * 1e9 / self.makespan_ns as f64
        }
    }

    /// Fraction of offered queries that were served (1.0 when nothing
    /// was offered): the node-local availability ratio.
    pub fn availability(&self) -> f64 {
        let offered = self.queries + self.shed;
        if offered == 0 {
            1.0
        } else {
            self.queries as f64 / offered as f64
        }
    }

    /// The per-tenant slot for `tenant`, growing the split vector with
    /// empty slots as needed (tenant indices are dense and small).
    pub(crate) fn tenant_mut(&mut self, tenant: u16) -> &mut TenantServing {
        let idx = tenant as usize;
        if self.per_tenant.len() <= idx {
            self.per_tenant.resize_with(idx + 1, TenantServing::default);
        }
        &mut self.per_tenant[idx]
    }
}

/// A query's per-table row bags, however they are stored.
///
/// The streaming entry points ([`SlsSystem::open_loop_push`]) take the
/// query's lookups through this trait so the same dispatch path serves
/// a materialized [`tracegen::Trace`], a lazy
/// [`tracegen::QueryStream`], and the cluster router's recycled
/// per-shard sub-bag buffers.
///
/// [`SlsSystem::open_loop_push`]: crate::system::SlsSystem::open_loop_push
pub trait QueryBags {
    /// The row indices this query looks up in `table`. Out-of-range
    /// tables may panic.
    fn bag(&self, table: u32) -> &[u64];
}

impl QueryBags for tracegen::QueryStream {
    fn bag(&self, table: u32) -> &[u64] {
        tracegen::QueryStream::bag(self, table)
    }
}

impl QueryBags for tracegen::TenantMixStream {
    fn bag(&self, table: u32) -> &[u64] {
        tracegen::TenantMixStream::bag(self, table)
    }
}

/// Per-shard routed sub-bags, table-indexed (the cluster router's
/// recycled buffers).
impl QueryBags for [Vec<u64>] {
    fn bag(&self, table: u32) -> &[u64] {
        &self[table as usize]
    }
}

/// Options for a streaming open-loop session
/// ([`SlsSystem::open_loop_begin`]).
///
/// [`SlsSystem::open_loop_begin`]: crate::system::SlsSystem::open_loop_begin
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenLoopOpts {
    /// Record the per-query completion vector
    /// ([`ServingMetrics::completion`]). The vector grows with the
    /// stream — turn it off for bounded-memory long-trace runs that
    /// only need the histograms.
    pub record_completion: bool,
    /// Partition the latency histogram into arrival-time windows of
    /// this many ns ([`ServingMetrics::windows`]); `None` keeps only
    /// the whole-run histograms. Windows finalize online as soon as no
    /// future query can land in them, so the open set stays O(1).
    pub window_ns: Option<u64>,
}

impl Default for OpenLoopOpts {
    fn default() -> Self {
        OpenLoopOpts {
            record_completion: true,
            window_ns: None,
        }
    }
}

/// One finalized arrival-time window of per-query latencies.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSummary {
    /// Window index: arrivals in `[window * window_ns, (window + 1) *
    /// window_ns)` land here. Windows with no arrivals are skipped.
    pub window: u64,
    /// Window start, ns (window × the session's `window_ns`).
    pub start_ns: u64,
    /// Queries completed in this window.
    pub count: u64,
    /// Median latency, ns.
    pub p50_ns: u64,
    /// 99th-percentile latency, ns.
    pub p99_ns: u64,
    /// Mean latency, ns.
    pub mean_ns: f64,
    /// Maximum latency, ns.
    pub max_ns: u64,
}

/// Streaming arrival-time-windowed latency accounting.
///
/// Latencies are keyed by the query's *arrival* window (shift- and
/// placement-independent), recorded as each batch retires. A window
/// finalizes — its histogram summarized and dropped — as soon as the
/// batcher guarantees no future query can land in it: any batch
/// closing at `c` holds arrivals in `[c - max_wait, c]`, and every
/// later arrival is `>= c - max_wait`, so after dispatching that batch
/// all windows ending at or before `c - max_wait` are complete. The
/// open set is therefore bounded by `max_wait / window_ns + 2`
/// entries regardless of stream length.
#[derive(Debug, Clone)]
pub(crate) struct LatencyWindows {
    window_ns: u64,
    max_wait: SimDuration,
    /// Open windows in ascending index order (arrivals are
    /// non-decreasing, so append-at-back keeps them sorted).
    open: VecDeque<(u64, LatencyHist)>,
    /// Finalized summaries, in window order.
    done: Vec<WindowSummary>,
}

impl LatencyWindows {
    /// Creates an empty accounting with `window_ns`-wide windows under
    /// a batcher with `max_wait_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is zero.
    pub fn new(window_ns: u64, max_wait_ns: u64) -> Self {
        assert!(window_ns > 0, "latency window width must be positive");
        LatencyWindows {
            window_ns,
            max_wait: SimDuration::from_ns(max_wait_ns),
            open: VecDeque::new(),
            done: Vec::new(),
        }
    }

    /// Records one query's latency under its arrival window.
    pub fn record(&mut self, arrival: SimTime, latency: SimDuration) {
        let idx = arrival.as_ns() / self.window_ns;
        match self.open.back_mut() {
            Some((last, hist)) if *last == idx => hist.record(latency),
            _ => {
                debug_assert!(
                    self.open.back().is_none_or(|(last, _)| *last < idx),
                    "arrivals must be non-decreasing"
                );
                let mut hist = LatencyHist::default();
                hist.record(latency);
                self.open.push_back((idx, hist));
            }
        }
    }

    /// Finalizes every window no future arrival can land in, given that
    /// a batch just closed at `close` (see the type docs for why
    /// `close - max_wait` is the safe bound).
    pub fn on_batch_close(&mut self, close: SimTime) {
        let bound = close.as_ns().saturating_sub(self.max_wait.as_ns());
        while let Some((idx, _)) = self.open.front() {
            if (idx + 1).saturating_mul(self.window_ns) > bound {
                break;
            }
            let (idx, hist) = self.open.pop_front().expect("front just checked");
            self.finalize(idx, &hist);
        }
    }

    /// Drains every remaining window and returns the summaries.
    pub fn finish(mut self) -> Vec<WindowSummary> {
        while let Some((idx, hist)) = self.open.pop_front() {
            self.finalize(idx, &hist);
        }
        self.done
    }

    fn finalize(&mut self, idx: u64, hist: &LatencyHist) {
        self.done.push(WindowSummary {
            window: idx,
            start_ns: idx * self.window_ns,
            count: hist.count(),
            p50_ns: hist.percentile(0.50),
            p99_ns: hist.percentile(0.99),
            mean_ns: hist.mean_ns(),
            max_ns: hist.max_ns(),
        });
    }
}

/// The state of one in-progress streaming open-loop run, between
/// [`SlsSystem::open_loop_begin`] and [`SlsSystem::open_loop_finish`].
///
/// Holds everything `run_open_loop`'s two-phase implementation kept on
/// the stack — the batcher, the accumulating metrics, the counter
/// snapshots, and the warm-start time base — plus a bounded store of
/// the pending (not yet dispatched) queries' bags: at most
/// `batch_size` queries × `n_tables` bags, recycled at every dispatch.
/// `Clone` is the checkpoint primitive: a cloned session (inside a
/// cloned [`SlsSystem`](crate::system::SlsSystem)) resumes
/// byte-identically.
///
/// [`SlsSystem::open_loop_begin`]: crate::system::SlsSystem::open_loop_begin
/// [`SlsSystem::open_loop_finish`]: crate::system::SlsSystem::open_loop_finish
#[derive(Debug, Clone)]
pub(crate) struct OpenLoopSession {
    /// The dynamic batcher.
    pub batcher: QueryBatcher,
    /// Metrics accumulated so far.
    pub serving: ServingMetrics,
    /// Sum of per-bag latencies (for `mean_bag_ns`).
    pub bag_latency_sum: u128,
    /// Device access counts at session start.
    pub dev_offset: Vec<u64>,
    /// Hardware counters at session start.
    pub counter_offsets: CounterOffsets,
    /// The warm-start time base: max host `next_free` at begin.
    pub t0: SimTime,
    /// `t0` as a shift applied to every arrival timestamp.
    pub shift: SimDuration,
    /// Batches dispatched so far (the host round-robin cursor).
    pub batches_dispatched: u64,
    /// Record the per-query completion vector.
    pub record_completion: bool,
    /// Tables per query (the partition layout input).
    pub n_tables: u32,
    /// Pending queries' rows, query-major then table-major, flat.
    pub rows: Vec<u64>,
    /// Bag boundaries into `rows`: pending query `p`, table `t` spans
    /// `rows[offsets[p * n_tables + t]..offsets[p * n_tables + t + 1]]`
    /// (leading sentinel 0).
    pub offsets: Vec<usize>,
    /// Windowed latency accounting, when requested.
    pub windows: Option<LatencyWindows>,
    /// Next query id to assign (== queries pushed so far).
    pub next_qid: u64,
    /// Latest pushed arrival (monotonicity check).
    pub last_arrival: SimTime,
    /// Shed queries awaiting their slot in the completion vector
    /// (qid, arrival): completions index by qid, and a shed query's
    /// neighbours may still be pending when it is dropped, so its entry
    /// is spliced in as the surrounding batches retire. Only populated
    /// when completions are recorded and the shed policy is active.
    pub shed_completions: VecDeque<(u64, SimTime)>,
    /// Pending queries' tenant tags, parallel to the pending-bag store
    /// (untagged pushes record tenant 0).
    pub tenants: Vec<u16>,
    /// The adaptive-knob controller (a no-op under
    /// [`ControllerPolicy::Fixed`]).
    pub controller: ServingController,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batcher(batch_size: u32, max_wait_ns: u64) -> QueryBatcher {
        QueryBatcher::new(&ServingConfig {
            batch_size,
            max_wait_ns,
            ..ServingConfig::default()
        })
    }

    fn qids(b: &ReadyBatch) -> Vec<u64> {
        b.queries.iter().map(|q| q.qid).collect()
    }

    #[test]
    fn fills_close_at_the_triggering_arrival() {
        let mut b = batcher(3, 1_000);
        assert!(b.offer(0, SimTime::from_ns(10)).is_none());
        assert!(b.offer(1, SimTime::from_ns(20)).is_none());
        let batch = b.offer(2, SimTime::from_ns(30)).expect("batch full");
        assert_eq!(qids(&batch), [0, 1, 2]);
        assert_eq!(batch.close, SimTime::from_ns(30));
        assert!(b.is_empty());
    }

    #[test]
    fn empty_tick_is_a_no_op() {
        let mut b = batcher(4, 1_000);
        assert!(b.flush_due(SimTime::from_ns(5_000)).is_none());
        assert!(b.is_empty());
        assert_eq!(b.deadline(), None);
    }

    #[test]
    fn max_wait_fires_before_the_batch_fills() {
        let mut b = batcher(8, 1_000);
        assert!(b.offer(0, SimTime::from_ns(100)).is_none());
        assert!(b.offer(1, SimTime::from_ns(600)).is_none());
        // Not due yet at 1099…
        assert!(b.flush_due(SimTime::from_ns(1_099)).is_none());
        // …due at the oldest query's deadline, closing part-full there.
        let batch = b.flush_due(SimTime::from_ns(5_000)).expect("timeout due");
        assert_eq!(qids(&batch), [0, 1]);
        assert_eq!(batch.close, SimTime::from_ns(1_100));
        assert!(b.is_empty());
        // The tick after the flush is an empty tick.
        assert!(b.flush_due(SimTime::from_ns(5_000)).is_none());
    }

    #[test]
    fn timeout_exactly_at_an_arrival_fires_first() {
        // Deadline comparisons are inclusive: an arrival landing exactly
        // on the oldest query's deadline joins the *next* batch.
        let mut b = batcher(8, 1_000);
        assert!(b.offer(0, SimTime::from_ns(0)).is_none());
        let at = SimTime::from_ns(1_000);
        let batch = b.flush_due(at).expect("deadline is inclusive");
        assert_eq!(qids(&batch), [0]);
        assert_eq!(batch.close, at);
        assert!(b.offer(1, at).is_none());
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn same_simtime_arrivals_keep_fifo_order() {
        let mut b = batcher(4, 1_000);
        let t = SimTime::from_ns(77);
        assert!(b.offer(10, t).is_none());
        assert!(b.offer(11, t).is_none());
        assert!(b.offer(12, t).is_none());
        let batch = b.offer(13, t).expect("filled");
        assert_eq!(qids(&batch), [10, 11, 12, 13]);
        assert_eq!(batch.close, t);
    }

    #[test]
    fn trailing_queries_flush_at_their_deadline() {
        let mut b = batcher(8, 2_000);
        assert!(b.offer(0, SimTime::from_ns(500)).is_none());
        assert!(b.offer(1, SimTime::from_ns(900)).is_none());
        // End of stream: drain with a far-future now.
        let batch = b
            .flush_due(SimTime::from_ns(u64::MAX))
            .expect("trailing batch");
        assert_eq!(qids(&batch), [0, 1]);
        assert_eq!(batch.close, SimTime::from_ns(2_500));
        assert!(b.flush_due(SimTime::from_ns(u64::MAX)).is_none());
    }

    #[test]
    fn batch_size_one_dispatches_immediately() {
        let mut b = batcher(1, 1_000);
        let batch = b.offer(0, SimTime::from_ns(42)).expect("immediate");
        assert_eq!(qids(&batch), [0]);
        assert_eq!(batch.close, SimTime::from_ns(42));
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_rejected() {
        let _ = batcher(0, 1_000);
    }

    #[test]
    fn shed_policy_parse_covers_spellings_and_reports_why_it_rejects() {
        assert_eq!(ShedPolicy::parse("none"), Ok(ShedPolicy::None));
        assert_eq!(ShedPolicy::parse("deadline"), Ok(ShedPolicy::Deadline));
        assert_eq!(
            ShedPolicy::parse("queue:64"),
            Ok(ShedPolicy::QueueDepth { max_pending: 64 })
        );
        assert!(ShedPolicy::parse("fifo")
            .unwrap_err()
            .contains("unknown shed policy"));
        assert!(ShedPolicy::parse("queue")
            .unwrap_err()
            .contains("missing depth"));
        assert!(ShedPolicy::parse("queue:0").unwrap_err().contains(">= 1"));
        assert!(ShedPolicy::parse("queue:x")
            .unwrap_err()
            .contains("not a positive integer"));
        assert!(ShedPolicy::parse("deadline:5")
            .unwrap_err()
            .contains("trailing"));
        for spec in ["none", "deadline", "queue:8"] {
            let parsed = ShedPolicy::parse(spec).unwrap();
            assert_eq!(ShedPolicy::parse(&parsed.label()), Ok(parsed));
        }
    }

    #[test]
    fn availability_counts_shed_against_offered() {
        let mut m = ServingMetrics::default();
        assert_eq!(m.availability(), 1.0);
        m.queries = 30;
        m.shed = 10;
        assert_eq!(m.availability(), 0.75);
    }

    #[test]
    fn set_knobs_applies_to_the_next_close_decision() {
        let mut b = batcher(4, 10_000);
        assert!(b.offer(0, SimTime::from_ns(100)).is_none());
        assert!(b.offer(1, SimTime::from_ns(200)).is_none());
        // Shrinking the fill target below the pending count does not
        // close retroactively — the next offer does.
        b.set_knobs(2, 500);
        let batch = b.offer(2, SimTime::from_ns(300)).expect("fill target 2");
        assert_eq!(qids(&batch), [0, 1, 2]);
        // The shrunk max-wait governs the next deadline.
        assert!(b.offer(3, SimTime::from_ns(400)).is_none());
        assert_eq!(b.deadline(), Some(SimTime::from_ns(900)));
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn set_knobs_rejects_zero_batch_size() {
        batcher(4, 1_000).set_knobs(0, 1_000);
    }

    // ---- window-retirement boundary pins (ISSUE 10 satellite 2) ----
    //
    // The bound at `on_batch_close` is `close - max_wait` (saturating),
    // and a window retires iff it ends *at or before* the bound:
    // `(idx + 1) * window_ns > bound` keeps it open. These tests pin
    // that inclusive/exclusive convention at the exact edges.

    fn retired(w: &LatencyWindows) -> Vec<u64> {
        w.done.iter().map(|s| s.window).collect()
    }

    fn open_windows(w: &LatencyWindows) -> Vec<u64> {
        w.open.iter().map(|(idx, _)| *idx).collect()
    }

    #[test]
    fn window_ending_exactly_at_the_bound_retires() {
        // close 3_000, max_wait 1_000 → bound 2_000. Window 1 spans
        // [1_000, 2_000): it ends exactly at the bound and a future
        // arrival is >= 2_000, so it must retire. Window 2 spans
        // [2_000, 3_000): an arrival at exactly 2_000 could still land
        // in it, so it must stay open.
        let mut w = LatencyWindows::new(1_000, 1_000);
        w.record(SimTime::from_ns(1_500), SimDuration::from_ns(10));
        w.record(SimTime::from_ns(2_000), SimDuration::from_ns(20));
        w.on_batch_close(SimTime::from_ns(3_000));
        assert_eq!(retired(&w), [1]);
        assert_eq!(open_windows(&w), [2]);
        // One ns earlier and window 1 ends past the bound: it stays.
        let mut w = LatencyWindows::new(1_000, 1_000);
        w.record(SimTime::from_ns(1_500), SimDuration::from_ns(10));
        w.on_batch_close(SimTime::from_ns(2_999));
        assert_eq!(retired(&w), [] as [u64; 0]);
        assert_eq!(open_windows(&w), [1]);
    }

    #[test]
    fn zero_max_wait_retires_right_up_to_the_close() {
        // max_wait 0 → bound == close: every window ending at or
        // before the close instant retires immediately.
        let mut w = LatencyWindows::new(100, 0);
        w.record(SimTime::from_ns(50), SimDuration::from_ns(1));
        w.record(SimTime::from_ns(150), SimDuration::from_ns(1));
        w.record(SimTime::from_ns(200), SimDuration::from_ns(1));
        w.on_batch_close(SimTime::from_ns(200));
        // Windows 0 ([0,100)) and 1 ([100,200)) end at/before 200;
        // window 2 ([200,300)) holds the close-instant arrival itself.
        assert_eq!(retired(&w), [0, 1]);
        assert_eq!(open_windows(&w), [2]);
    }

    #[test]
    fn window_wider_than_the_close_stays_open_until_finish() {
        // window_ns > close: window 0 ends at 10_000, far past any
        // bound a close at 500 can justify — it must survive every
        // close and only drain at finish.
        let mut w = LatencyWindows::new(10_000, 100);
        w.record(SimTime::from_ns(10), SimDuration::from_ns(7));
        w.on_batch_close(SimTime::from_ns(500));
        assert_eq!(retired(&w), [] as [u64; 0]);
        assert_eq!(open_windows(&w), [0]);
        let done = w.finish();
        assert_eq!(done.len(), 1);
        assert_eq!((done[0].window, done[0].count), (0, 1));
    }

    #[test]
    fn close_before_max_wait_clamps_the_bound_to_zero() {
        // close < max_wait: the saturating_sub clamps bound to 0 and
        // nothing can retire — no window ends at or before 0.
        let mut w = LatencyWindows::new(100, 5_000);
        w.record(SimTime::from_ns(10), SimDuration::from_ns(3));
        w.on_batch_close(SimTime::from_ns(400));
        assert_eq!(retired(&w), [] as [u64; 0]);
        assert_eq!(open_windows(&w), [0]);
    }

    #[test]
    fn retirement_matches_finish_summaries_exactly() {
        // A window summarized at retirement must equal the summary the
        // same records would produce at finish (no double-finalize, no
        // lost records across the bound).
        let feed = |w: &mut LatencyWindows| {
            for i in 0..10u64 {
                w.record(SimTime::from_ns(i * 300), SimDuration::from_ns(10 + i));
            }
        };
        let mut streamed = LatencyWindows::new(1_000, 500);
        feed(&mut streamed);
        streamed.on_batch_close(SimTime::from_ns(2_700));
        assert_eq!(retired(&streamed), [0, 1]);
        let mut whole = LatencyWindows::new(1_000, 500);
        feed(&mut whole);
        assert_eq!(streamed.finish(), whole.finish());
    }
}
