//! The layered execution engine behind [`SlsSystem`](crate::system::SlsSystem).
//!
//! The full-system simulator is decomposed into five layers, each its
//! own module, so that scaling work (sharding, batching, async issue,
//! alternative backends) can replace one layer without touching the
//! others:
//!
//! * [`config`] — the scheme matrix: [`SystemConfig`](config::SystemConfig)
//!   and the Pond / BEACON / RecNMP / PIFS-Rec constructors;
//! * [`topology`] — the physical plant (hosts, switches, devices,
//!   remote socket) and its construction from a config;
//! * [`pipeline`] — the per-query request→forward→DRAM→accumulate path
//!   as explicit stages behind a small `Stage` trait;
//! * [`pagemgmt_epoch`] — epoch-boundary page management (§IV-B) and
//!   the TPP baseline;
//! * [`serving`] — the open-loop serving layer: timestamped query
//!   queue, the fill/max-wait [`QueryBatcher`](serving::QueryBatcher),
//!   and streaming tail-latency accounting;
//! * [`controller`] — deterministic adaptive serving controllers: the
//!   pluggable [`ControllerPolicy`](controller::ControllerPolicy) that
//!   retunes the batching knobs and the page-management epoch cadence
//!   from sim-time-visible load and hotness-churn signals;
//! * [`metrics`] — [`RunMetrics`](metrics::RunMetrics) and the warmup
//!   counter-offset bookkeeping;
//! * [`cluster`] — cluster-scale sharded serving: N nodes behind a
//!   router, pluggable row→shard placement, and the exact (bitwise
//!   shard-count-invariant) partial-sum merge;
//! * [`checkpoint`] — deep-copy [`SimCheckpoint`](checkpoint::SimCheckpoint)
//!   snapshots of a streaming serving run, for sweep warm-starts proven
//!   state-identical to straight-through execution.
//!
//! The [`system`](crate::system) module composes these into the public
//! façade; its API (`SlsSystem`, `SystemConfig`, `RunMetrics`, the
//! scheme constructors) is unchanged by the layering.

#![deny(missing_docs)]

pub mod checkpoint;
pub mod cluster;
pub mod config;
pub mod controller;
pub mod metrics;
pub mod pagemgmt_epoch;
pub mod pipeline;
pub mod serving;
pub mod topology;
