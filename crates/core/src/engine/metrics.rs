//! Run-level measurement: the [`RunMetrics`] every figure harness
//! reports, plus the warmup counter-offset bookkeeping that lets a run
//! measure steady state only.

#![deny(missing_docs)]

use super::topology::{HostCtx, SwitchCtx};

/// Everything a run measures.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// End-to-end makespan of the trace (including exposed migration
    /// overhead), ns.
    pub total_ns: u64,
    /// SLS bags processed.
    pub bags: u64,
    /// Row lookups performed.
    pub lookups: u64,
    /// Lookups served from local DRAM.
    pub local_lookups: u64,
    /// Lookups served from the remote socket.
    pub remote_lookups: u64,
    /// Lookups served over CXL.
    pub cxl_lookups: u64,
    /// On-switch buffer hits (0 when no buffer).
    pub buffer_hits: u64,
    /// On-switch buffer misses.
    pub buffer_misses: u64,
    /// Per-device access counts (Fig 13(b)).
    pub device_accesses: Vec<u64>,
    /// Page migrations performed.
    pub migrations: u64,
    /// Exposed migration overhead, ns.
    pub migration_ns: u64,
    /// In-order accumulation stalls.
    pub ooo_stalls: u64,
    /// Swap-register spills to SRAM.
    pub sram_spills: u64,
    /// Bytes over the host↔switch links.
    pub host_link_bytes: u64,
    /// Functional checksum of every bag result (placement-independent up
    /// to FP32 reassociation).
    pub checksum: f64,
    /// Mean bag latency, ns.
    pub mean_bag_ns: f64,
}

impl RunMetrics {
    /// Application bandwidth: embedding bytes touched per wall-clock
    /// second, in GB/s (the Fig 5/6 y-axis before normalization).
    pub fn app_bandwidth_gbps(&self, row_bytes: u64) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            (self.lookups * row_bytes) as f64 / self.total_ns as f64
        }
    }

    /// Buffer hit ratio.
    pub fn buffer_hit_ratio(&self) -> f64 {
        let t = self.buffer_hits + self.buffer_misses;
        if t == 0 {
            0.0
        } else {
            self.buffer_hits as f64 / t as f64
        }
    }

    /// Migration overhead as a fraction of total latency (Fig 13(a)
    /// right axis).
    pub fn migration_cost_frac(&self) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            self.migration_ns as f64 / self.total_ns as f64
        }
    }
}

/// Cumulative hardware counters captured at the warmup boundary so the
/// measured window reports only steady-state activity.
#[derive(Debug, Default, Clone)]
pub(crate) struct CounterOffsets {
    stalls: u64,
    spills: u64,
    hits: u64,
    misses: u64,
    link_bytes: u64,
}

impl CounterOffsets {
    /// Records the current cumulative counters of every switch and host.
    pub(crate) fn capture(switches: &[SwitchCtx], hosts: &[HostCtx]) -> Self {
        let mut off = CounterOffsets::default();
        for s in switches {
            off.stalls += s.engine.stalls;
            off.spills += s.engine.sram_spills;
            if let Some(b) = &s.buffer {
                off.hits += b.hits();
                off.misses += b.misses();
            }
        }
        for h in hosts {
            if let Some(b) = &h.dimm_cache {
                off.hits += b.hits();
                off.misses += b.misses();
            }
            off.link_bytes += h.req_link.total_bytes() + h.rsp_link.total_bytes();
        }
        off
    }

    /// Folds the end-of-run cumulative counters into `metrics`,
    /// subtracting everything that happened before the capture point.
    pub(crate) fn finish(
        &self,
        switches: &[SwitchCtx],
        hosts: &[HostCtx],
        metrics: &mut RunMetrics,
    ) {
        for s in switches {
            metrics.ooo_stalls += s.engine.stalls;
            metrics.sram_spills += s.engine.sram_spills;
            if let Some(b) = &s.buffer {
                metrics.buffer_hits += b.hits();
                metrics.buffer_misses += b.misses();
            }
        }
        for h in hosts {
            if let Some(b) = &h.dimm_cache {
                metrics.buffer_hits += b.hits();
                metrics.buffer_misses += b.misses();
            }
            metrics.host_link_bytes += h.req_link.total_bytes() + h.rsp_link.total_bytes();
        }
        metrics.ooo_stalls -= self.stalls;
        metrics.sram_spills -= self.spills;
        metrics.buffer_hits -= self.hits;
        metrics.buffer_misses -= self.misses;
        metrics.host_link_bytes -= self.link_bytes;
    }
}
