//! Epoch-boundary page management: the paper's §IV-B global policy
//! (hot-page promotion with claim-&-swap, cold-age demotion, embedding
//! spreading) and the TPP-like baseline, applied between batches.

#![deny(missing_docs)]

use cxlsim::Type3Device;
use pagemgmt::{
    DeviceLoad, GlobalHotness, MigrationCostModel, PageId, PageTable, SpreadConfig, Tier,
};
use simkit::SimDuration;

use super::config::{PmStyle, SystemConfig};
use super::metrics::RunMetrics;

/// Mutable view over the state an epoch touches: placement, hotness,
/// per-device access counts, and the run metrics being charged.
pub(crate) struct EpochCtx<'a> {
    /// The run configuration.
    pub cfg: &'a SystemConfig,
    /// Page placement being rewritten.
    pub page_table: &'a mut PageTable,
    /// Cross-host page-hotness state.
    pub hotness: &'a mut GlobalHotness,
    /// Per-device page-access counts within this epoch.
    pub epoch_dev_pages: &'a mut [simkit::hash::FastMap<PageId, u64>],
    /// Devices (read-only: load statistics).
    pub devices: &'a [Type3Device],
    /// Run metrics under construction.
    pub metrics: &'a mut RunMetrics,
    /// Monotonic epoch counter.
    pub pm_epoch: &'a mut u64,
}

/// Global (cross-host) heat of `page`.
fn hotness_count(hotness: &GlobalHotness, page: PageId) -> u64 {
    (0..hotness.n_hosts())
        .map(|h| hotness.host(h).count(page))
        .sum()
}

fn least_loaded_device(devices: &[Type3Device]) -> u16 {
    devices
        .iter()
        .enumerate()
        .min_by_key(|&(_, d)| d.access_count())
        .map(|(i, _)| i as u16)
        .unwrap_or(0)
}

/// One page-management epoch: global hotness classification, hot-page
/// promotion with claim-&-swap, cold-age demotion, and embedding
/// spreading across devices. Returns the exposed overhead.
pub(crate) fn run_pm_epoch(ctx: &mut EpochCtx<'_>) -> SimDuration {
    let Some(pm) = ctx.cfg.page_mgmt else {
        return SimDuration::ZERO;
    };
    let cost = match pm.granularity {
        pagemgmt::MigrationGranularity::PageBlock => MigrationCostModel::page_block(),
        pagemgmt::MigrationGranularity::CacheLineBlock => MigrationCostModel::cache_line_block(),
    };
    let migrations_before = ctx.page_table.migrations();

    if pm.style == PmStyle::Tpp {
        return run_tpp_epoch(ctx, &cost, migrations_before);
    }

    // 1. Promote globally hottest pages into local DRAM. Promotion is
    // budgeted per epoch so migration overhead amortizes over the
    // run instead of thrashing on the first batch.
    let hot_capacity = ctx.page_table.capacities().local_pages as usize;
    // Aggressive promotion while the hot set is being learned, then a
    // trickle: steady-state churn would otherwise chase Zipf-tail
    // sampling noise forever.
    let promote_budget = if *ctx.pm_epoch < 4 {
        (hot_capacity / 4).max(8) as u64
    } else {
        // Steady-state trickle, scaled by the migrate threshold
        // (Fig 13(a)'s knob: a higher threshold moves more pages).
        ((pm.migrate_threshold * 48.0) as u64).max(4)
    };
    let classes = ctx.hotness.classify(hot_capacity);
    let mut promoted = 0u64;
    let mut hot_pages: Vec<(u64, PageId)> = classes
        .iter()
        .filter(|(_, c)| matches!(c, pagemgmt::PageClass::PrivateHot(_)))
        .map(|(&p, _)| (hotness_count(ctx.hotness, p), p))
        // Tail pages with a couple of accesses churn in and out of
        // the hot set; only promote pages with real heat.
        .filter(|&(heat, _)| heat >= 4)
        .collect();
    // Hottest first, deterministic tie-break.
    hot_pages.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let hot_pages: Vec<PageId> = hot_pages.into_iter().map(|(_, p)| p).collect();
    // Current local residents, coldest first, available for swapping.
    let mut residents: Vec<(PageId, u64)> = ctx
        .page_table
        .iter()
        .filter(|&(_, t)| t == Tier::Local)
        .map(|(p, _)| (p, hotness_count(ctx.hotness, p)))
        .collect();
    residents.sort_unstable_by_key(|&(p, c)| (c, p));
    let mut resident_cursor = 0usize;
    for page in hot_pages {
        if promoted >= promote_budget {
            break;
        }
        if ctx.page_table.tier_of(page) == Some(Tier::Local) {
            continue;
        }
        if ctx.page_table.move_page(page, Tier::Local).is_ok() {
            promoted += 1;
            continue;
        }
        // Local full: claim & swap with the coldest resident.
        while resident_cursor < residents.len() {
            let (victim, victim_heat) = residents[resident_cursor];
            resident_cursor += 1;
            if ctx.page_table.tier_of(victim) != Some(Tier::Local) {
                continue;
            }
            // Hysteresis: only displace a resident when the candidate
            // is clearly hotter, otherwise promotion thrashes.
            if hotness_count(ctx.hotness, page) < victim_heat.saturating_mul(2).max(4) {
                break; // residents are comparably hot; stop promoting
            }
            ctx.page_table.swap(page, victim);
            promoted += 1;
            break;
        }
        if resident_cursor >= residents.len() {
            break;
        }
    }

    // 2. Cold-age demotion of stale private-hot pages (bounded per
    // epoch so demotion churn cannot swamp useful work).
    let mut demotions = ctx
        .hotness
        .demotions(&classes, hot_capacity, pm.cold_age_threshold);
    demotions.truncate(((pm.migrate_threshold * 24.0) as usize).max(2));
    for page in demotions {
        if ctx.page_table.tier_of(page) == Some(Tier::Local) {
            // Send it to the least-loaded device.
            let dev = least_loaded_device(ctx.devices);
            let _ = ctx.page_table.move_page(page, Tier::Cxl(dev));
        }
    }

    // 3. Embedding spreading across devices, budgeted by the migrate
    // threshold (larger threshold ⇒ more pages eligible to move).
    // Spreading runs periodically — device-level imbalance drifts
    // slowly, and rebalancing every epoch would re-chase sampling
    // noise.
    *ctx.pm_epoch += 1;
    if !(*ctx.pm_epoch).is_multiple_of(4) {
        // Epoch bookkeeping still advances below.
        for m in ctx.epoch_dev_pages.iter_mut() {
            m.clear();
        }
        for h in 0..ctx.hotness.n_hosts() {
            ctx.hotness.host_mut(h).decay();
        }
        let migrated = ctx.page_table.migrations() - migrations_before;
        ctx.metrics.migrations += migrated;
        let _ = promoted;
        let concurrent = migrated * 2;
        return cost.total_overhead(migrated, concurrent);
    }
    let active_pages: usize = ctx.epoch_dev_pages.iter().map(|m| m.len()).sum();
    // Budget scales with the observed imbalance: balanced traffic
    // gets a trickle, a Fig 10(b)-style hotspot gets aggressive
    // redistribution.
    let dev_totals: Vec<u64> = ctx
        .epoch_dev_pages
        .iter()
        .map(|m| m.values().sum::<u64>())
        .collect();
    let avg = (dev_totals.iter().sum::<u64>() as f64 / dev_totals.len().max(1) as f64).max(1.0);
    let imbalance = dev_totals.iter().copied().max().unwrap_or(0) as f64 / avg;
    let budget = ((active_pages as f64 * pm.migrate_threshold / 8.0).ceil() as usize).clamp(
        1,
        ((pm.migrate_threshold * 192.0 * imbalance) as usize).max(8),
    );
    let mut loads: Vec<DeviceLoad> = ctx
        .epoch_dev_pages
        .iter()
        .enumerate()
        .map(|(d, pages)| DeviceLoad {
            pages: pages
                .iter()
                .filter(|(p, _)| ctx.page_table.tier_of(**p) == Some(Tier::Cxl(d as u16)))
                .map(|(&p, &c)| (p, c))
                .collect(),
            capacity: ctx.page_table.capacities().cxl_pages_per_dev,
        })
        .collect();
    let moves = pagemgmt::rebalance(
        &mut loads,
        &SpreadConfig {
            migrate_threshold: 0.35,
            max_rounds: budget,
        },
    );
    for m in &moves {
        let _ = ctx.page_table.move_page(m.page, Tier::Cxl(m.to));
    }

    // Epoch cleanup.
    for m in ctx.epoch_dev_pages.iter_mut() {
        m.clear();
    }
    for h in 0..ctx.hotness.n_hosts() {
        ctx.hotness.host_mut(h).decay();
    }

    let migrated = ctx.page_table.migrations() - migrations_before;
    ctx.metrics.migrations += migrated;
    let _ = promoted;
    // In-flight lookups colliding with migrating pages: a couple per
    // moved page at DLRM arrival rates.
    let concurrent = migrated * 2;
    cost.total_overhead(migrated, concurrent)
}

/// TPP-like epoch: promote every page re-referenced this epoch
/// (heat ≥ 2), evicting the least-recently-promoted page when local
/// DRAM is full. No spreading, no global coordination.
fn run_tpp_epoch(
    ctx: &mut EpochCtx<'_>,
    cost: &MigrationCostModel,
    migrations_before: u64,
) -> SimDuration {
    let mut candidates: Vec<(u64, PageId)> = Vec::new();
    for h in 0..ctx.hotness.n_hosts() {
        for (page, heat) in ctx.hotness.host(h).iter() {
            if heat >= 2 && ctx.page_table.tier_of(page) != Some(Tier::Local) {
                candidates.push((heat, page));
            }
        }
    }
    candidates.sort_unstable_by(|a, b| b.cmp(a));
    candidates.truncate(64);
    // Demotion victims: current locals, coldest first.
    let mut locals: Vec<(u64, PageId)> = ctx
        .page_table
        .iter()
        .filter(|&(_, t)| t == Tier::Local)
        .map(|(p, _)| (hotness_count(ctx.hotness, p), p))
        .collect();
    locals.sort_unstable();
    let mut victim_cursor = 0usize;
    for (_, page) in candidates {
        if ctx.page_table.move_page(page, Tier::Local).is_ok() {
            continue;
        }
        if victim_cursor >= locals.len() {
            break;
        }
        let (_, victim) = locals[victim_cursor];
        victim_cursor += 1;
        ctx.page_table.swap(page, victim);
    }
    for m in ctx.epoch_dev_pages.iter_mut() {
        m.clear();
    }
    for h in 0..ctx.hotness.n_hosts() {
        ctx.hotness.host_mut(h).decay();
    }
    let migrated = ctx.page_table.migrations() - migrations_before;
    ctx.metrics.migrations += migrated;
    cost.total_overhead(migrated, migrated * 2)
}
