//! The per-query timing path, decomposed into explicit stages.
//!
//! Each SLS bag flows request→forward→DRAM→accumulate through a fixed
//! sequence of `Stage`s operating on a shared `EngineCtx`:
//!
//! 1. `ClassifyStage` — resolve rows to tiers, record hotness;
//! 2. `LocalGatherStage` — host-DRAM rows (DIMM-side fold for RecNMP);
//! 3. `RemoteGatherStage` — remote-socket rows over the socket link;
//! 4. `CxlGatherStage` — pooled-CXL rows, on the host (Pond/RecNMP
//!    spill) or in the fabric switch (PIFS/BEACON);
//! 5. `FinalizeStage` — fold the functional checksum into the metrics.
//!
//! Timing is resource-based: every shared medium (host FlexBus links,
//! switch transit, device links, DRAM banks/buses, the accumulate unit)
//! is a stateful resource that serializes contending work, so congestion
//! and parallelism emerge rather than being assumed.

#![deny(missing_docs)]

use std::collections::VecDeque;

use cxlsim::{M2sReq, SwitchId, Topology, Type3Device};
use dlrm::EmbeddingTable;
use memsim::{DramDevice, MemOp};
use pagemgmt::{GlobalHotness, PageId, PageTable, Tier};
use simkit::{SimDuration, SimTime};

use super::config::{ComputeSite, SystemConfig};
use super::metrics::RunMetrics;
use super::topology::{spread_addr, HostCtx, SwitchCtx};
use crate::acr::ClusterId;
use crate::forward::ForwardOutcome;

/// Host-side cost of issuing one instruction (decode + queue into the
/// CXL controller).
pub(crate) const ISSUE_NS: u64 = 2;
/// Host snoop-detection latency once a result lands (§IV-A2's
/// CXL.cache-based monitoring).
pub(crate) const SNOOP_NS: u64 = 10;
/// Process-core instruction decode occupancy per instruction.
pub(crate) const DECODE_NS: u64 = 1;

/// The one per-system scratch bundle: the per-bag pipeline buffers
/// ([`BagScratch`], including the SoA [`BagBatch`] gather arena) and the
/// open-loop serving dispatcher's per-run buffers
/// ([`ServingScratch`](super::serving::ServingScratch)). Both run modes
/// share this single allocation-free scratch convention — any new
/// reusable buffer, per-bag or per-batch, belongs here.
#[derive(Debug, Default, Clone)]
pub(crate) struct EngineScratch {
    /// Per-bag pipeline buffers.
    pub bag: BagScratch,
    /// Open-loop serving dispatch buffers.
    pub serving: super::serving::ServingScratch,
}

/// Reusable buffers for the per-bag pipeline.
///
/// One instance lives in [`SlsSystem`](crate::system::SlsSystem) (inside
/// [`EngineScratch`]) and is threaded through every [`process_bag`]
/// call: the bag takes the buffers, uses them, and hands them back
/// cleared, so steady-state query processing performs no per-bag heap
/// allocation. This is the allocation-free scratch-buffer convention
/// ARCHITECTURE.md documents — any new stage state that would otherwise
/// be a fresh `Vec` per bag belongs here.
#[derive(Debug, Default, Clone)]
pub(crate) struct BagScratch {
    local: Vec<(u64, u64)>,
    remote: Vec<(u64, u64)>,
    cxl: Vec<(u16, u64, u64)>,
    acc: Vec<f32>,
    window: VecDeque<SimTime>,
    sent: Vec<SimTime>,
    instr_arrivals: Vec<SimTime>,
    by_switch: Vec<SwitchGroup>,
    sub_acc: Vec<f32>,
    batch: BagBatch,
}

/// Structure-of-arrays gather stage: one bag's (or one switch group's)
/// row ids collected in bag order, folded in one batched pass after the
/// timing loop. Rows of a materialized table fold straight from the
/// shared contiguous row store — copying them into a local arena first
/// would only add memory traffic (measured slower on the `end_to_end`
/// targets). Rows of an over-cap (procedural) table batch-fill the
/// arena with the vectorized hash ([`EmbeddingTable::value_block`]) in
/// one contiguous row-major slab, which the SoA fold
/// ([`dlrm::sls::simd::fold_rows_soa`]) then streams. Both paths fold
/// in push order with the per-element scalar operation, so the sums are
/// bit-identical to per-row [`dlrm::sls::accumulate_row`]. Lives in
/// [`BagScratch`]; capacities persist across bags.
#[derive(Debug, Default, Clone)]
pub(crate) struct BagBatch {
    /// Row ids gathered for the pending fold, in bag order.
    rows: Vec<u64>,
    /// Row-major `rows × dim` value slab (procedural tables only).
    data: Vec<f32>,
    /// Element width of each gathered row.
    dim: usize,
}

impl BagBatch {
    /// Starts a new gather at width `dim`, keeping buffer capacities.
    pub(crate) fn begin(&mut self, dim: usize) {
        self.rows.clear();
        self.data.clear();
        self.dim = dim;
    }

    /// Appends one row id to the gather.
    pub(crate) fn push_row(&mut self, row: u64) {
        self.rows.push(row);
    }

    /// Folds every gathered row of `table` into `acc` in push order —
    /// bit-identical to per-row [`dlrm::sls::accumulate_row`] (see the
    /// type docs for the two paths).
    pub(crate) fn fold_into(&mut self, table: &EmbeddingTable, acc: &mut [f32]) {
        debug_assert_eq!(self.dim, table.dim() as usize, "gather width mismatch");
        if table.is_materialized() {
            for &row in &self.rows {
                dlrm::sls::accumulate_row(acc, table, row, 1.0);
            }
            return;
        }
        self.data.resize(self.rows.len() * self.dim, 0.0);
        for (&row, slot) in self.rows.iter().zip(self.data.chunks_exact_mut(self.dim)) {
            table.value_block(row, 0, slot);
        }
        dlrm::sls::simd::fold_rows_soa(acc, &self.data, None);
    }
}

/// Mutable view over the system state a pipeline stage may touch.
///
/// The fields are split borrows of [`SlsSystem`](crate::system::SlsSystem)
/// so stages can contend on hosts, switches and devices independently,
/// exactly as the monolithic implementation did.
pub(crate) struct EngineCtx<'a> {
    /// The run configuration.
    pub cfg: &'a SystemConfig,
    /// Host/switch/device adjacency.
    pub topo: &'a Topology,
    /// All switches (process cores, buffers, ACR/IIR/FC state).
    pub switches: &'a mut [SwitchCtx],
    /// All CXL Type 3 devices.
    pub devices: &'a mut [Type3Device],
    /// All hosts (cores, links, local DRAM).
    pub hosts: &'a mut [HostCtx],
    /// Link to the remote socket.
    pub remote_link: &'a mut cxlsim::FlexBusLink,
    /// Remote-socket DRAM.
    pub remote_dram: &'a mut DramDevice,
    /// Page placement (read-only during query processing).
    pub page_table: &'a PageTable,
    /// Embedding tables (functional values).
    pub tables: &'a [EmbeddingTable],
    /// Cross-host page-hotness state.
    pub hotness: &'a mut GlobalHotness,
    /// Per-device page-access counts within the current PM epoch.
    pub epoch_dev_pages: &'a mut [simkit::hash::FastMap<PageId, u64>],
    /// Run metrics under construction.
    pub metrics: &'a mut RunMetrics,
    /// Next ACR cluster id.
    pub next_cluster: &'a mut u64,
}

impl EngineCtx<'_> {
    fn tier_of_addr(&self, addr: u64) -> Tier {
        self.page_table
            .tier_of(PageId::of_addr(addr))
            .expect("every embedding page is placed at construction")
    }
}

/// One in-flight SLS bag moving through the pipeline.
///
/// The growable buffers are borrowed from the system's [`BagScratch`]
/// (via `std::mem::take`) and handed back cleared by [`BagState::release`],
/// so constructing a bag allocates nothing in the steady state.
pub(crate) struct BagState<'r> {
    /// Issuing host.
    pub host_idx: usize,
    /// Core-issue time.
    pub issue: SimTime,
    /// Embedding table index.
    pub table: u32,
    /// Row indices of the bag.
    pub rows: &'r [u64],
    /// Per-element fold latency, ns.
    pub acc_ns: u64,
    /// Rows resolved to local DRAM: `(row, addr)`.
    pub local: Vec<(u64, u64)>,
    /// Rows resolved to the remote socket: `(row, addr)`.
    pub remote: Vec<(u64, u64)>,
    /// Rows resolved to pooled CXL: `(device, row, addr)`.
    pub cxl: Vec<(u16, u64, u64)>,
    /// The functional accumulator.
    pub acc: Vec<f32>,
    /// In-flight fold completions for the bounded MLP window (each
    /// gather stage clears it before use).
    pub window: VecDeque<SimTime>,
    /// Remaining scratch used only by the switch-compute path.
    pub scratch: BagScratch,
    /// Completion time of everything observed so far.
    pub done: SimTime,
    /// Time the issuing core is next free.
    pub core_busy: SimTime,
}

impl<'r> BagState<'r> {
    fn new(
        cfg: &SystemConfig,
        scratch: &mut BagScratch,
        host_idx: usize,
        issue: SimTime,
        table: u32,
        rows: &'r [u64],
    ) -> Self {
        let dim = cfg.model.emb_dim as usize;
        let mut taken = std::mem::take(scratch);
        taken.local.clear();
        taken.remote.clear();
        taken.cxl.clear();
        taken.acc.clear();
        taken.acc.resize(dim, 0.0f32);
        let local = std::mem::take(&mut taken.local);
        let remote = std::mem::take(&mut taken.remote);
        let cxl = std::mem::take(&mut taken.cxl);
        let acc = std::mem::take(&mut taken.acc);
        let window = std::mem::take(&mut taken.window);
        BagState {
            host_idx,
            issue,
            table,
            rows,
            acc_ns: (dim as u64).div_ceil(16).max(1),
            local,
            remote,
            cxl,
            acc,
            window,
            scratch: taken,
            done: issue,
            core_busy: issue,
        }
    }

    /// Returns every taken buffer to `scratch`, cleared but with its
    /// capacity intact for the next bag.
    fn release(mut self, scratch: &mut BagScratch) {
        self.local.clear();
        self.remote.clear();
        self.cxl.clear();
        self.acc.clear();
        self.window.clear();
        self.scratch.local = self.local;
        self.scratch.remote = self.remote;
        self.scratch.cxl = self.cxl;
        self.scratch.acc = self.acc;
        self.scratch.window = self.window;
        *scratch = self.scratch;
    }
}

/// One step of the per-bag request→forward→DRAM→accumulate path.
///
/// Stages run in a fixed order over a shared [`EngineCtx`]; each advances
/// the bag's timing (`done`, `core_busy`) and functional state (`acc`).
pub(crate) trait Stage: Sync {
    /// Short stage name for diagnostics.
    fn name(&self) -> &'static str;
    /// Advances `bag` through this stage.
    fn run(&self, ctx: &mut EngineCtx<'_>, bag: &mut BagState<'_>);
}

/// The standard five-stage bag pipeline, in execution order.
pub(crate) const STAGES: &[&dyn Stage] = &[
    &ClassifyStage,
    &LocalGatherStage,
    &RemoteGatherStage,
    &CxlGatherStage,
    &FinalizeStage,
];

/// Names of the standard stages, in execution order.
pub(crate) fn stage_names() -> Vec<&'static str> {
    STAGES.iter().map(|s| s.name()).collect()
}

/// Processes one bag through [`STAGES`]; returns
/// `(completion_time, core_free_time)`.
pub(crate) fn process_bag(
    ctx: &mut EngineCtx<'_>,
    scratch: &mut BagScratch,
    host_idx: usize,
    issue: SimTime,
    table: u32,
    rows: &[u64],
) -> (SimTime, SimTime) {
    let mut bag = BagState::new(ctx.cfg, scratch, host_idx, issue, table, rows);
    for stage in STAGES {
        stage.run(ctx, &mut bag);
    }
    let result = (bag.done, bag.core_busy.max(bag.issue));
    bag.release(scratch);
    result
}

/// Resolves each row to its tier, records page hotness, and charges the
/// per-tier lookup counters.
pub(crate) struct ClassifyStage;

impl Stage for ClassifyStage {
    fn name(&self) -> &'static str {
        "classify"
    }

    fn run(&self, ctx: &mut EngineCtx<'_>, bag: &mut BagState<'_>) {
        ctx.metrics.lookups += bag.rows.len() as u64;
        for &row in bag.rows {
            let addr = ctx.tables[bag.table as usize].row_addr(row);
            let page = PageId::of_addr(addr);
            ctx.hotness.host_mut(bag.host_idx).record(page);
            match ctx.tier_of_addr(addr) {
                Tier::Local => bag.local.push((row, addr)),
                Tier::Remote => bag.remote.push((row, addr)),
                Tier::Cxl(d) => {
                    let d = d % ctx.cfg.n_devices;
                    ctx.epoch_dev_pages[d as usize]
                        .entry(page)
                        .and_modify(|c| *c += 1)
                        .or_insert(1);
                    bag.cxl.push((d, row, addr));
                }
            }
        }
        ctx.metrics.local_lookups += bag.local.len() as u64;
        ctx.metrics.remote_lookups += bag.remote.len() as u64;
        ctx.metrics.cxl_lookups += bag.cxl.len() as u64;
    }
}

/// Local rows: host-compute everywhere except RecNMP, which folds in
/// the DIMM using bank-level parallelism and its DIMM cache.
pub(crate) struct LocalGatherStage;

impl Stage for LocalGatherStage {
    fn name(&self) -> &'static str {
        "local-gather"
    }

    fn run(&self, ctx: &mut EngineCtx<'_>, bag: &mut BagState<'_>) {
        if bag.local.is_empty() {
            return;
        }
        let row_bytes = ctx.cfg.model.row_bytes();
        let is_nmp = ctx.cfg.compute == ComputeSite::Dimm;
        let start = bag.core_busy;
        bag.window.clear();
        let mut t = start;
        let mut last = start;
        for &(_row, addr) in &bag.local {
            if !is_nmp && bag.window.len() >= ctx.cfg.outstanding {
                t = t.max(bag.window.pop_front().expect("window non-empty"));
            }
            let host = &mut ctx.hosts[bag.host_idx];
            let mut served_from_cache = false;
            if is_nmp {
                if let Some(cache) = host.dimm_cache.as_mut() {
                    served_from_cache = cache.access(addr);
                }
            }
            let data = if served_from_cache {
                let lat = host
                    .dimm_cache
                    .as_ref()
                    .expect("cache present")
                    .access_latency();
                t + lat
            } else {
                host.dram
                    .access_span(t, spread_addr(addr), row_bytes, MemOp::Read)
            };
            // RecNMP gathers with bank-level parallelism inside the DIMM:
            // the whole bag is issued at once and folds pipeline behind
            // the data (§VI-C1: "the latter performs data fetch with
            // bank-level parallelism"). Hosts fold on the core with a
            // bounded MLP window.
            let fold_done =
                data + SimDuration::from_ns(if is_nmp { bag.acc_ns / 2 } else { bag.acc_ns });
            bag.window.push_back(fold_done);
            t += SimDuration::from_ns(if is_nmp { 1 } else { ISSUE_NS });
            last = last.max(fold_done);
        }
        // SoA gather + wide fold, hoisted out of the timing loop: same
        // rows in the same order as the per-row fold it replaces, so the
        // functional sums are bit-identical.
        let table = &ctx.tables[bag.table as usize];
        bag.scratch.batch.begin(table.dim() as usize);
        for &(row, _) in &bag.local {
            bag.scratch.batch.push_row(row);
        }
        bag.scratch.batch.fold_into(table, &mut bag.acc);
        // Local gathers are software-pipelined across bags (prefetch
        // hides local DRAM latency — the CPU optimizations of the
        // paper's [8]); the core is free once the loads are in flight.
        // RecNMP likewise returns asynchronously with its pooled result.
        bag.done = bag.done.max(last);
        bag.core_busy = t;
    }
}

/// Remote-socket rows: a bounded MLP window over the socket link and the
/// partially-populated remote DRAM; synchronous on the issuing core.
pub(crate) struct RemoteGatherStage;

impl Stage for RemoteGatherStage {
    fn name(&self) -> &'static str {
        "remote-gather"
    }

    fn run(&self, ctx: &mut EngineCtx<'_>, bag: &mut BagState<'_>) {
        if bag.remote.is_empty() {
            return;
        }
        let row_bytes = ctx.cfg.model.row_bytes();
        bag.window.clear();
        let mut t = bag.core_busy;
        let mut last = bag.core_busy;
        for &(_row, addr) in &bag.remote {
            if bag.window.len() >= ctx.cfg.outstanding {
                t = t.max(bag.window.pop_front().expect("window non-empty"));
            }
            let sent = ctx.remote_link.transfer(t, 16);
            let data = ctx
                .remote_dram
                .access_span(sent, spread_addr(addr), row_bytes, MemOp::Read);
            let back = ctx.remote_link.transfer(data, row_bytes);
            let fold_done = back + SimDuration::from_ns(bag.acc_ns);
            bag.window.push_back(fold_done);
            t += SimDuration::from_ns(ISSUE_NS);
            last = last.max(fold_done);
        }
        // SoA gather + wide fold, hoisted out of the timing loop (order
        // preserved, bit-identical).
        let table = &ctx.tables[bag.table as usize];
        bag.scratch.batch.begin(table.dim() as usize);
        for &(row, _) in &bag.remote {
            bag.scratch.batch.push_row(row);
        }
        bag.scratch.batch.fold_into(table, &mut bag.acc);
        bag.done = bag.done.max(last);
        bag.core_busy = bag.core_busy.max(last); // synchronous on the core
    }
}

/// Pooled-CXL rows: dispatches to host-side folding (Pond, RecNMP
/// spill) or in-switch accumulation (PIFS, BEACON) per the configured
/// compute site.
pub(crate) struct CxlGatherStage;

impl Stage for CxlGatherStage {
    fn name(&self) -> &'static str {
        "cxl-gather"
    }

    fn run(&self, ctx: &mut EngineCtx<'_>, bag: &mut BagState<'_>) {
        if bag.cxl.is_empty() {
            return;
        }
        let (cxl_done, core_after) = match ctx.cfg.compute {
            ComputeSite::Host | ComputeSite::Dimm => cxl_rows_host_compute(ctx, bag),
            ComputeSite::Switch => cxl_rows_switch_compute(ctx, bag),
        };
        bag.done = bag.done.max(cxl_done);
        bag.core_busy = core_after;
    }
}

/// Folds the bag's functional checksum into the run metrics.
pub(crate) struct FinalizeStage;

impl Stage for FinalizeStage {
    fn name(&self) -> &'static str {
        "finalize"
    }

    fn run(&self, ctx: &mut EngineCtx<'_>, bag: &mut BagState<'_>) {
        ctx.metrics.checksum += bag.acc.iter().map(|&x| x as f64).sum::<f64>();
    }
}

/// Rows of one bag homed on one switch, as indices into `BagState::cxl`.
type SwitchGroup = (SwitchId, Vec<usize>);

/// Pond-style CXL handling: each row crosses the whole fabric to the
/// host, which folds it on a core.
fn cxl_rows_host_compute(ctx: &mut EngineCtx<'_>, bag: &mut BagState<'_>) -> (SimTime, SimTime) {
    let row_bytes = ctx.cfg.model.row_bytes();
    let host_switch = ctx.topo.host_switch(bag.host_idx);
    let start = bag.core_busy;
    bag.window.clear();
    let mut t = start;
    let mut last = start;
    for &(dev, _row, addr) in &bag.cxl {
        if bag.window.len() >= ctx.cfg.outstanding {
            t = t.max(bag.window.pop_front().expect("window non-empty"));
        }
        let sent = ctx.hosts[bag.host_idx]
            .req_link
            .transfer(t, M2sReq::WIRE_BYTES);
        let dev_switch = ctx.topo.device_switch(dev as usize);
        let hop = ctx.topo.hop_latency(host_switch, dev_switch);
        let at_switch = ctx.switches[dev_switch.0 as usize].sw.transit(sent) + hop;
        let data_at_switch =
            ctx.devices[dev as usize].read(at_switch, spread_addr(addr), row_bytes);
        let back_at_host_switch = data_at_switch + hop;
        let at_host = ctx.hosts[bag.host_idx]
            .rsp_link
            .transfer(back_at_host_switch, row_bytes + M2sReq::WIRE_BYTES);
        let fold_done = at_host + SimDuration::from_ns(bag.acc_ns);
        bag.window.push_back(fold_done);
        t += SimDuration::from_ns(ISSUE_NS);
        last = last.max(fold_done);
    }
    // SoA gather + wide fold, hoisted out of the timing loop (order
    // preserved, bit-identical).
    let table = &ctx.tables[bag.table as usize];
    bag.scratch.batch.begin(table.dim() as usize);
    for &(_, row, _) in &bag.cxl {
        bag.scratch.batch.push_row(row);
    }
    bag.scratch.batch.fold_into(table, &mut bag.acc);
    // The gather loop is software-pipelined across bags; the run is
    // bound by fabric bandwidth (every row crosses the host link,
    // which is Pond's structural handicap), not by one bag's RTT.
    (last, t)
}

/// PIFS/BEACON CXL handling: the host streams `Configuration` +
/// `DataFetch` instructions and goes on with its life; the switch
/// fetches, accumulates and pushes the result back for the snooping
/// host.
fn cxl_rows_switch_compute(ctx: &mut EngineCtx<'_>, bag: &mut BagState<'_>) -> (SimTime, SimTime) {
    let row_bytes = ctx.cfg.model.row_bytes();
    let dim = ctx.cfg.model.emb_dim;
    let host_idx = bag.host_idx;
    let table = bag.table;
    let host_switch = ctx.topo.host_switch(host_idx);
    let local_sw_idx = host_switch.0 as usize;
    let cluster = ClusterId(*ctx.next_cluster);
    *ctx.next_cluster += 1;

    // Group rows by the switch homing their device. Group entries are
    // recycled from the bag scratch: only the first `n_groups` are live
    // for this bag, and their inner index vectors keep their capacity
    // across bags.
    let mut n_groups = 0usize;
    for (i, &(dev, _, _)) in bag.cxl.iter().enumerate() {
        let s = ctx.topo.device_switch(dev as usize);
        let by_switch = &mut bag.scratch.by_switch;
        match by_switch[..n_groups].iter_mut().find(|(sid, _)| *sid == s) {
            Some((_, v)) => v.push(i),
            None => {
                if n_groups == by_switch.len() {
                    by_switch.push((s, Vec::new()));
                } else {
                    by_switch[n_groups].0 = s;
                    by_switch[n_groups].1.clear();
                }
                by_switch[n_groups].1.push(i);
                n_groups += 1;
            }
        }
    }

    // Host issues Configuration + one DataFetch per row on its
    // request link, then is free (asynchronous communication).
    let chunks = (row_bytes.div_ceil(16)).min(8) as u8;
    let config_req = M2sReq::configuration(
        0xF000_0000,
        (cluster.0 & 0x1FF) as u16,
        bag.cxl.len() as u16,
        host_idx as u16,
    );
    debug_assert_eq!(config_req.opcode, cxlsim::MemOpcode::Configuration);
    let mut t = bag.core_busy;
    let config_arrival = {
        let sent = ctx.hosts[host_idx].req_link.transfer(t, M2sReq::WIRE_BYTES);
        t += SimDuration::from_ns(ISSUE_NS);
        ctx.switches[local_sw_idx].sw.transit(sent)
    };
    // The DataFetch stream is issued back-to-back at the core's issue
    // rate, so the request link arbitrates the whole burst in one pass
    // instead of re-entering per flit.
    ctx.hosts[host_idx].req_link.transfer_batch_into(
        t,
        SimDuration::from_ns(ISSUE_NS),
        M2sReq::WIRE_BYTES,
        bag.cxl.len(),
        &mut bag.scratch.sent,
    );
    t += SimDuration::from_ns(ISSUE_NS * bag.cxl.len() as u64);
    // Arrival time of each DataFetch at its switch, indexed by the row's
    // position in `bag.cxl` (positional, so duplicate rows in one bag
    // keep their own serialized issue/arrival times).
    // Debug builds round-trip the whole DataFetch burst through the
    // batched codec and check every instruction routes to the process
    // core; the release path models only the stream's timing.
    #[cfg(debug_assertions)]
    {
        let stream: Vec<M2sReq> = bag
            .cxl
            .iter()
            .map(|&(_, _, addr)| {
                M2sReq::data_fetch(addr, (cluster.0 & 0x1FF) as u16, chunks, host_idx as u16)
            })
            .collect();
        let mut slab = Vec::new();
        M2sReq::encode_batch(&stream, &mut slab);
        let mut decoded = Vec::new();
        M2sReq::decode_batch(&slab, &mut decoded).expect("DataFetch burst decodes");
        assert_eq!(decoded, stream, "batched codec must round-trip the burst");
        for req in &decoded {
            assert_eq!(
                crate::instrflow::check_memopcode(req),
                crate::InstrRoute::ProcessCore
            );
        }
    }
    bag.scratch.instr_arrivals.clear();
    for (i, &(dev, _row, _addr)) in bag.cxl.iter().enumerate() {
        let s = ctx.topo.device_switch(dev as usize);
        let hop = ctx.topo.hop_latency(host_switch, s);
        let transit = ctx.switches[local_sw_idx].sw.transit(bag.scratch.sent[i]);
        bag.scratch.instr_arrivals.push(transit + hop);
    }
    let core_free = t;

    // The local ACR opens the cluster when the Configuration lands.
    let _ = config_arrival;
    ctx.switches[local_sw_idx]
        .acr
        .configure(cluster, bag.cxl.len() as u32, 0xF000_0000, dim)
        .unwrap_or_else(|_| panic!("ACR backpressure not modeled as fatal: raise ACR_CAPACITY"));
    ctx.switches[local_sw_idx]
        .fc
        .open(cluster, n_groups as u32, dim);

    // Each switch group accumulates its sub-cluster.
    let mut final_done = config_arrival;
    let mut merged_acc: Option<Vec<f32>> = None;
    for (sid, group) in &bag.scratch.by_switch[..n_groups] {
        // §IV-C2 versatility: a remote switch without a process core
        // (CNV = 0) cannot accumulate — the local switch does all the
        // work and raw rows stream across the inter-switch fabric.
        let remote_cnv = ctx.switches[sid.0 as usize].sw.cnv();
        let s_idx = if remote_cnv {
            sid.0 as usize
        } else {
            local_sw_idx
        };
        bag.scratch.sub_acc.clear();
        bag.scratch.sub_acc.resize(dim as usize, 0.0f32);
        // Per-group SoA gather: the sub-cluster's rows stream through the
        // arena in group order, so the wide fold below is bit-identical
        // to the per-row fold it replaces. (`ctx.tables` is copied out so
        // the borrow doesn't pin `ctx` across the timing loop.)
        let tables: &[EmbeddingTable] = ctx.tables;
        let tbl = &tables[table as usize];
        bag.scratch.batch.begin(dim as usize);
        for &i in group {
            bag.scratch.batch.push_row(bag.cxl[i].1);
        }
        let mut sub_last = SimTime::ZERO;
        for &i in group {
            let (dev, _row, addr) = bag.cxl[i];
            let arrival = bag.scratch.instr_arrivals[i];
            // Decode (+ BEACON's translation logic) serializes in the PC.
            let sw = &mut ctx.switches[s_idx];
            let decode_start = arrival.max(sw.decode_free);
            sw.decode_free = decode_start + SimDuration::from_ns(DECODE_NS);
            let decoded = sw.decode_free + SimDuration::from_ns(ctx.cfg.translation_ns);

            // Register in the IIR, repack and fetch (buffer first).
            let fetch_req =
                M2sReq::data_fetch(addr, (cluster.0 & 0x1FF) as u16, chunks, host_idx as u16);
            let _ = sw.iir.register(fetch_req);
            let hit = sw.buffer.as_mut().map(|b| b.access(addr)).unwrap_or(false);
            let mut data_ready = if hit {
                let lat = sw.buffer.as_ref().expect("buffer present").access_latency();
                decoded + lat
            } else {
                ctx.devices[dev as usize].read(decoded, spread_addr(addr), row_bytes)
            };
            if !remote_cnv {
                // Raw row crosses to the computing (local) switch.
                data_ready = data_ready
                    + ctx.topo.hop_latency(*sid, host_switch)
                    + SimDuration::from_ns(row_bytes / ctx.cfg.cxl.link_gbps.max(1) + 1);
            }
            let sw = &mut ctx.switches[s_idx];
            sw.iir.match_return(addr);
            let folded = sw.engine.process_row(data_ready, cluster);
            sub_last = sub_last.max(folded);
        }
        bag.scratch.batch.fold_into(tbl, &mut bag.scratch.sub_acc);
        ctx.switches[s_idx].engine.complete_cluster(cluster);

        // Ship the sub-result to the local switch (free when the
        // accumulation already happened locally).
        let hop = if remote_cnv {
            ctx.topo.hop_latency(*sid, host_switch)
        } else {
            SimDuration::ZERO
        };
        let sub_at_local = sub_last + hop;
        match ctx.switches[local_sw_idx].fc.on_sub_result(
            cluster,
            &bag.scratch.sub_acc,
            sub_at_local,
        ) {
            ForwardOutcome::Waiting => {}
            ForwardOutcome::Complete(vec, at) => {
                merged_acc = Some(vec);
                final_done = final_done.max(at);
            }
        }
    }

    // Retire the cluster in the ACR by feeding the merged result as
    // bookkeeping (counts were tracked per arrival by the engine; the
    // ACR holds the canonical counter — drained counter-only, since the
    // merged arithmetic lives in the forward controller's result).
    let merged = merged_acc.expect("all sub-clusters reported");
    let _ = ctx.switches[local_sw_idx]
        .acr
        .drain_rows(cluster, bag.cxl.len() as u32);
    for (a, &v) in bag.acc.iter_mut().zip(&merged) {
        *a += v;
    }

    // Result returns to the reserved host address via CXL.cache D2H;
    // the host's snooping daemon notices shortly after.
    let at_host = ctx.hosts[host_idx]
        .rsp_link
        .transfer(final_done, row_bytes + M2sReq::WIRE_BYTES);
    let visible = at_host + SimDuration::from_ns(SNOOP_NS);
    (visible, core_free)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bag_batch_fold_matches_per_row_accumulate() {
        // One materialized table and one over-cap procedural table: the
        // arena gather must be bit-identical to per-row accumulate_row
        // on both storage kinds, including duplicate rows.
        let small = EmbeddingTable::new(3, 128, 48, 0);
        let big = EmbeddingTable::new(7, 1 << 20, 64, 1 << 30);
        assert!(small.is_materialized() && !big.is_materialized());
        for table in [&small, &big] {
            let rows: Vec<u64> = (0..17).map(|i| (i * 31 + 5) % table.rows()).collect();
            let dim = table.dim() as usize;
            let mut want = vec![0.0f32; dim];
            for &r in &rows {
                dlrm::sls::accumulate_row(&mut want, table, r, 1.0);
            }
            let mut batch = BagBatch::default();
            batch.begin(dim);
            for &r in &rows {
                batch.push_row(r);
            }
            let mut got = vec![0.0f32; dim];
            batch.fold_into(table, &mut got);
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "table {} arena fold diverged",
                table.id()
            );
        }
    }

    #[test]
    fn stages_run_in_request_to_accumulate_order() {
        let names: Vec<&str> = STAGES.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "classify",
                "local-gather",
                "remote-gather",
                "cxl-gather",
                "finalize"
            ]
        );
    }
}
