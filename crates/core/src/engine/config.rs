//! System configuration: the scheme matrix of the paper's evaluation.
//!
//! One configuration type covers every scheme:
//!
//! | Scheme | compute | placement | buffer | OoO | page mgmt |
//! |---|---|---|---|---|---|
//! | Pond | Host | all-CXL | — | — | — |
//! | Pond+PM | Host | managed | — | — | yes |
//! | BEACON-S | Switch | all-CXL | — | in-order | — |
//! | RecNMP | Dimm | local+spill | DIMM cache | — | — |
//! | PIFS-Rec | Switch | managed | HTR | OoO | yes |

#![deny(missing_docs)]

use cxlsim::CxlParams;
use dlrm::{ModelConfig, ThreadingMode};
use pagemgmt::InitialPlacement;

use crate::buffer::BufferPolicy;

pub use super::serving::ServingConfig;

/// Where SLS accumulation executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComputeSite {
    /// On the host CPU (Pond): every row crosses the fabric to the host.
    Host,
    /// In the fabric switch process core (PIFS-Rec, BEACON).
    Switch,
    /// In the DIMM (RecNMP) for local rows; CXL rows fall back to host.
    Dimm,
}

/// Which page-management policy runs at epoch boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PmStyle {
    /// This paper's §IV-B design: global hotness, private-hot regions,
    /// cold-age demotion, embedding spreading.
    PifsGlobal,
    /// A TPP-like baseline: promote on re-reference, demote LRU-ish under
    /// pressure, no global view and no spreading (Fig 13(d)'s "TPP" bar).
    Tpp,
}

/// Dynamic page-management knobs (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmConfig {
    /// Policy flavour.
    pub style: PmStyle,
    /// Fraction of actively-used pages eligible to move per rebalance
    /// round (Fig 13(a); paper default 35 %).
    pub migrate_threshold: f64,
    /// Cold-age demotion threshold for the private hot region
    /// (Fig 13(d); paper default 20 %, optimum 16 %).
    pub cold_age_threshold: f64,
    /// Migration blocking discipline (Fig 13(a) red vs green).
    pub granularity: pagemgmt::MigrationGranularity,
}

impl Default for PmConfig {
    fn default() -> Self {
        PmConfig {
            style: PmStyle::PifsGlobal,
            migrate_threshold: 0.35,
            cold_age_threshold: 0.16,
            granularity: pagemgmt::MigrationGranularity::CacheLineBlock,
        }
    }
}

/// On-switch (or on-DIMM) buffer knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferConfig {
    /// Replacement policy.
    pub policy: BufferPolicy,
    /// SRAM capacity in bytes (Fig 15 sweeps 64 KB–1 MB; default 512 KB).
    pub capacity_bytes: u64,
}

impl Default for BufferConfig {
    fn default() -> Self {
        BufferConfig {
            policy: BufferPolicy::Htr,
            capacity_bytes: 512 * 1024,
        }
    }
}

/// Complete configuration of one simulated system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// The DLRM being served (usually a scaled-down Table I model).
    pub model: ModelConfig,
    /// CXL Type 3 devices in the pool.
    pub n_devices: u16,
    /// Hosts issuing queries.
    pub n_hosts: u16,
    /// Fabric switches (devices and hosts are spread round-robin).
    pub n_switches: u16,
    /// CPU cores per host running the lookup stage.
    pub cores_per_host: u32,
    /// Outstanding memory requests per core (MLP window).
    pub outstanding: usize,
    /// Where accumulation happens.
    pub compute: ComputeSite,
    /// Initial page placement.
    pub placement: InitialPlacement,
    /// Local-DRAM capacity as a fraction of the embedding working set
    /// (the scaled stand-in for the paper's fixed 128 GB).
    pub local_capacity_frac: f64,
    /// Dynamic page management, if enabled.
    pub page_mgmt: Option<PmConfig>,
    /// On-switch buffer (PIFS) or DIMM cache (RecNMP), if present.
    pub buffer: Option<BufferConfig>,
    /// Out-of-order accumulation in the switch engine.
    pub ooo: bool,
    /// Extra per-row address-translation latency in the switch (BEACON's
    /// added translation logic, §II-B2), ns.
    pub translation_ns: u64,
    /// Lookup-stage threading strategy.
    pub threading: ThreadingMode,
    /// Fabric latency/bandwidth parameters.
    pub cxl: CxlParams,
    /// Open-loop serving batcher knobs (only
    /// [`run_open_loop`](crate::system::SlsSystem::run_open_loop) reads
    /// them; closed-loop traces ignore this field).
    pub serving: ServingConfig,
    /// Batches excluded from measurement: they run first to warm the
    /// page placement, buffers and hotness state, modeling a system
    /// measured in steady state rather than from a cold boot. Their
    /// traffic and migration charges do not appear in
    /// [`RunMetrics`](crate::system::RunMetrics).
    pub warmup_batches: u32,
    /// RNG/workload seed echoed into metrics for provenance.
    pub seed: u64,
}

impl SystemConfig {
    fn base(model: ModelConfig) -> Self {
        SystemConfig {
            model,
            n_devices: 8,
            n_hosts: 1,
            n_switches: 1,
            cores_per_host: 8,
            outstanding: 16,
            compute: ComputeSite::Host,
            placement: InitialPlacement::AllCxl,
            local_capacity_frac: 0.2,
            page_mgmt: None,
            buffer: None,
            ooo: false,
            translation_ns: 0,
            threading: ThreadingMode::Batch,
            cxl: CxlParams::default(),
            serving: ServingConfig::default(),
            warmup_batches: 0,
            seed: 0,
        }
    }

    /// Pond (§VI-B): CXL memory pooling, host-side compute, no
    /// management.
    pub fn pond(model: ModelConfig) -> Self {
        Self::base(model)
    }

    /// Pond plus this paper's page-management software (the "Pond + PM"
    /// baseline).
    pub fn pond_pm(model: ModelConfig) -> Self {
        SystemConfig {
            placement: InitialPlacement::CxlFraction { cxl_frac: 0.8 },
            page_mgmt: Some(PmConfig::default()),
            ..Self::base(model)
        }
    }

    /// BEACON-S (§VI-B): in-switch compute, CXL-only memory, added
    /// translation logic, in-order accumulation, no locality buffer.
    pub fn beacon(model: ModelConfig) -> Self {
        SystemConfig {
            compute: ComputeSite::Switch,
            translation_ns: 25,
            ..Self::base(model)
        }
    }

    /// RecNMP (§VI-B): DIMM-side accumulation with bank-level parallelism
    /// and a DIMM cache; fixed local DRAM with CXL spill handled by the
    /// host.
    pub fn recnmp(model: ModelConfig, local_frac: f64) -> Self {
        SystemConfig {
            compute: ComputeSite::Dimm,
            placement: InitialPlacement::AllLocal, // spills to CXL when full
            local_capacity_frac: local_frac,
            buffer: Some(BufferConfig::default()),
            ..Self::base(model)
        }
    }

    /// PIFS-Rec: in-switch compute, managed tiered placement, HTR
    /// buffer, out-of-order accumulation.
    pub fn pifs_rec(model: ModelConfig) -> Self {
        SystemConfig {
            compute: ComputeSite::Switch,
            placement: InitialPlacement::CxlFraction { cxl_frac: 0.8 },
            page_mgmt: Some(PmConfig::default()),
            buffer: Some(BufferConfig::default()),
            ooo: true,
            ..Self::base(model)
        }
    }

    /// PIFS-Rec on a laptop-scale RMC1 — the quickstart configuration.
    pub fn pifs_rec_default() -> Self {
        Self::pifs_rec(ModelConfig::rmc1().scaled_down(4))
    }

    /// Applies one named knob override, `"key" = "value"`, so sweep
    /// harnesses can vary topology and page-management parameters without
    /// compiling new configuration code.
    ///
    /// Keys mirror the struct fields (`n_devices`, `n_hosts`,
    /// `n_switches`, `cores_per_host`, `outstanding`, `compute`,
    /// `local_capacity_frac`, `ooo`, `translation_ns`, `threading`,
    /// `warmup_batches`, `seed`) plus dotted paths into the optional
    /// sub-configs: `placement.cxl_frac`, `placement.remote_frac`,
    /// `placement` (`all_local` / `all_cxl`), `pm.style` (`pifs` /
    /// `tpp`), `pm.migrate_threshold`, `pm.cold_age_threshold`,
    /// `pm.granularity` (`cache_line` / `page_block`), `pm` (`off`),
    /// `buffer.policy` (`htr` / `lru` / `fifo`), `buffer.capacity_kb`,
    /// and `buffer` (`off`). Setting a `pm.*` or `buffer.*` knob on a
    /// config where that subsystem is disabled enables it with defaults
    /// first. The open-loop batcher exposes `serving.batch_size` and
    /// `serving.max_wait_us` (microseconds; fractional values allowed),
    /// the admission controller `serving.shed_policy`
    /// (`none | queue:<depth> | deadline`) and `serving.sla_us`, and the
    /// adaptive-knob controller `serving.controller`
    /// (`fixed | load | epoch | adaptive`).
    ///
    /// # Errors
    ///
    /// Returns a description of the problem for unknown keys or
    /// unparseable values; the config is left unchanged in that case.
    pub fn apply_knob(&mut self, key: &str, value: &str) -> Result<(), String> {
        fn parse<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
            value
                .parse()
                .map_err(|_| format!("knob {key}: cannot parse {value:?}"))
        }
        match key {
            "n_devices" => self.n_devices = parse(key, value)?,
            "n_hosts" => self.n_hosts = parse(key, value)?,
            "n_switches" => self.n_switches = parse(key, value)?,
            "cores_per_host" => self.cores_per_host = parse(key, value)?,
            "outstanding" => self.outstanding = parse(key, value)?,
            "local_capacity_frac" => self.local_capacity_frac = parse(key, value)?,
            "ooo" => self.ooo = parse(key, value)?,
            "translation_ns" => self.translation_ns = parse(key, value)?,
            "warmup_batches" => self.warmup_batches = parse(key, value)?,
            "seed" => self.seed = parse(key, value)?,
            "compute" => {
                self.compute = match value {
                    "host" => ComputeSite::Host,
                    "switch" => ComputeSite::Switch,
                    "dimm" => ComputeSite::Dimm,
                    _ => return Err(format!("knob compute: unknown site {value:?}")),
                }
            }
            "threading" => {
                self.threading = match value {
                    "batch" => ThreadingMode::Batch,
                    "table" => ThreadingMode::Table,
                    _ => return Err(format!("knob threading: unknown mode {value:?}")),
                }
            }
            "placement" => {
                self.placement = match value {
                    "all_local" => InitialPlacement::AllLocal,
                    "all_cxl" => InitialPlacement::AllCxl,
                    _ => return Err(format!("knob placement: unknown policy {value:?}")),
                }
            }
            "placement.cxl_frac" => {
                self.placement = InitialPlacement::CxlFraction {
                    cxl_frac: parse(key, value)?,
                }
            }
            "placement.remote_frac" => {
                self.placement = InitialPlacement::RemoteFraction {
                    remote_frac: parse(key, value)?,
                }
            }
            "pm" if value == "off" => self.page_mgmt = None,
            "pm.style" => {
                let style = match value {
                    "pifs" => PmStyle::PifsGlobal,
                    "tpp" => PmStyle::Tpp,
                    _ => return Err(format!("knob pm.style: unknown style {value:?}")),
                };
                self.page_mgmt.get_or_insert_with(PmConfig::default).style = style;
            }
            "pm.migrate_threshold" => {
                self.page_mgmt
                    .get_or_insert_with(PmConfig::default)
                    .migrate_threshold = parse(key, value)?
            }
            "pm.cold_age_threshold" => {
                self.page_mgmt
                    .get_or_insert_with(PmConfig::default)
                    .cold_age_threshold = parse(key, value)?
            }
            "pm.granularity" => {
                let granularity = match value {
                    "cache_line" => pagemgmt::MigrationGranularity::CacheLineBlock,
                    "page_block" => pagemgmt::MigrationGranularity::PageBlock,
                    _ => return Err(format!("knob pm.granularity: unknown value {value:?}")),
                };
                self.page_mgmt
                    .get_or_insert_with(PmConfig::default)
                    .granularity = granularity;
            }
            "buffer" if value == "off" => self.buffer = None,
            "buffer.policy" => {
                let policy = match value {
                    "htr" => BufferPolicy::Htr,
                    "lru" => BufferPolicy::Lru,
                    "fifo" => BufferPolicy::Fifo,
                    _ => return Err(format!("knob buffer.policy: unknown policy {value:?}")),
                };
                self.buffer.get_or_insert_with(BufferConfig::default).policy = policy;
            }
            "buffer.capacity_kb" => {
                self.buffer
                    .get_or_insert_with(BufferConfig::default)
                    .capacity_bytes = parse::<u64>(key, value)? * 1024
            }
            "serving.batch_size" => {
                let n: u32 = parse(key, value)?;
                if n == 0 {
                    return Err("knob serving.batch_size: must be positive".to_string());
                }
                self.serving.batch_size = n;
            }
            "serving.max_wait_us" => {
                let us: f64 = parse(key, value)?;
                if !(us >= 0.0 && us.is_finite()) {
                    return Err(format!("knob serving.max_wait_us: bad value {value:?}"));
                }
                self.serving.max_wait_ns = (us * 1_000.0).round() as u64;
            }
            "serving.shed_policy" => {
                self.serving.shed = super::serving::ShedPolicy::parse(value)
                    .map_err(|e| format!("knob serving.shed_policy: {e}"))?;
            }
            "serving.sla_us" => {
                let us: f64 = parse(key, value)?;
                if !(us > 0.0 && us.is_finite()) {
                    return Err(format!("knob serving.sla_us: bad value {value:?}"));
                }
                self.serving.sla_ns = (us * 1_000.0).round() as u64;
            }
            "serving.controller" => {
                self.serving.controller = super::controller::ControllerPolicy::parse(value)
                    .map_err(|e| format!("knob serving.controller: {e}"))?;
            }
            _ => return Err(format!("unknown SystemConfig knob {key:?}")),
        }
        Ok(())
    }

    /// Total embedding pages for this model.
    pub fn n_pages(&self) -> u64 {
        let table_bytes = page_align(self.model.emb_num * self.model.row_bytes());
        (table_bytes / pagemgmt::PAGE_BYTES) * self.model.n_tables as u64
    }
}

/// Rounds `bytes` up to a whole number of pages.
pub(crate) fn page_align(bytes: u64) -> u64 {
    bytes.div_ceil(pagemgmt::PAGE_BYTES) * pagemgmt::PAGE_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::pond(ModelConfig::rmc1().scaled_down(16))
    }

    #[test]
    fn knobs_cover_topology_and_subsystems() {
        let mut c = cfg();
        for (k, v) in [
            ("n_devices", "16"),
            ("n_hosts", "2"),
            ("cores_per_host", "4"),
            ("compute", "switch"),
            ("threading", "table"),
            ("placement.cxl_frac", "0.5"),
            ("pm.migrate_threshold", "0.25"),
            ("pm.style", "tpp"),
            ("buffer.policy", "lru"),
            ("buffer.capacity_kb", "64"),
            ("ooo", "true"),
            ("serving.batch_size", "16"),
            ("serving.max_wait_us", "12.5"),
            ("serving.shed_policy", "queue:48"),
            ("serving.sla_us", "30"),
            ("serving.controller", "adaptive"),
        ] {
            c.apply_knob(k, v).unwrap();
        }
        assert_eq!(c.n_devices, 16);
        assert_eq!(c.n_hosts, 2);
        assert_eq!(c.compute, ComputeSite::Switch);
        assert_eq!(c.threading, ThreadingMode::Table);
        assert_eq!(c.placement, InitialPlacement::CxlFraction { cxl_frac: 0.5 });
        let pm = c.page_mgmt.unwrap();
        assert_eq!(pm.migrate_threshold, 0.25);
        assert_eq!(pm.style, PmStyle::Tpp);
        let b = c.buffer.unwrap();
        assert_eq!(b.policy, BufferPolicy::Lru);
        assert_eq!(b.capacity_bytes, 64 * 1024);
        assert!(c.ooo);
        assert_eq!(c.serving.batch_size, 16);
        assert_eq!(c.serving.max_wait_ns, 12_500);
        assert_eq!(
            c.serving.shed,
            super::super::serving::ShedPolicy::QueueDepth { max_pending: 48 }
        );
        assert_eq!(c.serving.sla_ns, 30_000);
        assert_eq!(
            c.serving.controller,
            super::super::controller::ControllerPolicy::Adaptive
        );
    }

    #[test]
    fn serving_knob_rejects_degenerate_values() {
        let mut c = cfg();
        let before = c.clone();
        assert!(c.apply_knob("serving.batch_size", "0").is_err());
        assert!(c.apply_knob("serving.max_wait_us", "-1").is_err());
        assert!(c.apply_knob("serving.max_wait_us", "inf").is_err());
        assert!(c.apply_knob("serving.sla_us", "0").is_err());
        // The shed-policy parser's reason is surfaced through the knob.
        let err = c.apply_knob("serving.shed_policy", "queue:0").unwrap_err();
        assert!(
            err.contains("serving.shed_policy") && err.contains(">= 1"),
            "{err}"
        );
        let err = c.apply_knob("serving.controller", "pid").unwrap_err();
        assert!(
            err.contains("serving.controller") && err.contains("unknown serving controller"),
            "{err}"
        );
        assert_eq!(c, before);
    }

    #[test]
    fn bad_knobs_leave_the_config_unchanged() {
        let mut c = cfg();
        let before = c.clone();
        assert!(c.apply_knob("n_devices", "lots").is_err());
        assert!(c.apply_knob("pm.style", "magic").is_err());
        assert!(c.apply_knob("no_such_knob", "1").is_err());
        assert_eq!(c, before);
    }

    #[test]
    fn subsystem_off_switches_work() {
        let mut c = SystemConfig::pifs_rec(ModelConfig::rmc1().scaled_down(16));
        c.apply_knob("pm", "off").unwrap();
        c.apply_knob("buffer", "off").unwrap();
        assert!(c.page_mgmt.is_none());
        assert!(c.buffer.is_none());
    }
}
