//! `pifs-core` — Process-In-Fabric-Switch for Recommendation systems.
//!
//! This crate is the paper's primary contribution: a near-data processing
//! layer living inside the CXL fabric switch that executes DLRM
//! SparseLengthSum (SLS) accumulations next to pooled Type 3 memory,
//! plus the full-system simulator that evaluates it against host-compute
//! (Pond), switch-compute-without-management (BEACON) and DIMM-compute
//! (RecNMP) alternatives.
//!
//! Hardware blocks (§IV-A):
//!
//! * [`instrflow`] — the MemOpcode checker and instruction repacking that
//!   let standard CXL traffic bypass the process core untouched;
//! * [`iir`] — the Instruction Ingress Registry matching returning data
//!   to its originating instruction by address;
//! * [`acr`] — the Accumulate Configuration Register/Logic with
//!   `SumCandidateCounter` completion tracking and capacity-based
//!   backpressure;
//! * [`ooo`] — the out-of-order accumulation engine with swap registers;
//! * [`buffer`] — the on-switch SRAM buffer with the Hottest-Recording
//!   (HTR) replacement policy, plus LRU/FIFO for comparison;
//! * [`forward`] — multi-layer instruction forwarding across switches
//!   with `Sub-SumCandidateCounter` bookkeeping and CNV discovery.
//!
//! The [`system`] module composes these with the substrate crates
//! (`memsim`, `cxlsim`, `pagemgmt`, `dlrm`, `tracegen`) into a runnable
//! end-to-end model; every figure harness in `pifs-bench` drives
//! [`system::SlsSystem`].
//!
//! # Examples
//!
//! ```
//! use pifs_core::system::{SlsSystem, SystemConfig};
//! use tracegen::{Distribution, TraceSpec};
//!
//! let cfg = SystemConfig::pifs_rec_default();
//! let trace = TraceSpec {
//!     distribution: Distribution::MetaLike { reuse_frac: 0.35, s: 1.05 },
//!     n_tables: cfg.model.n_tables,
//!     rows_per_table: cfg.model.emb_num,
//!     batch_size: 8,
//!     n_batches: 2,
//!     bag_size: cfg.model.bag_size,
//!     seed: 1,
//! }.generate();
//! let metrics = SlsSystem::new(cfg).run_trace(&trace);
//! assert!(metrics.total_ns > 0);
//! ```

#![warn(missing_docs)]

pub mod acr;
pub mod buffer;
pub mod engine;
pub mod forward;
pub mod iir;
pub mod instrflow;
pub mod ooo;
pub mod system;

pub use acr::{AccumulateLogic, AcrFull, ClusterId};
pub use buffer::{BufferPolicy, OnSwitchBuffer};
pub use engine::checkpoint::SimCheckpoint;
pub use engine::cluster::{ClusterConfig, ClusterMetrics, ShardPolicy, SlsCluster};
pub use forward::{ForwardController, ForwardOutcome};
pub use iir::IngressRegistry;
pub use instrflow::{check_memopcode, InstrRoute};
pub use ooo::AccumEngine;
pub use system::{ComputeSite, RunMetrics, SlsSystem, SystemConfig};
