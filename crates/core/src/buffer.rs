//! The on-switch buffer with Hottest-Recording replacement (§IV-A4).
//!
//! Fetching one address from the CXL pool can take ~270 ns, ~37 % of it
//! CXL I/O port transfers and retimer delays. The on-switch SRAM keeps
//! the hottest embedding rows inside the switch, skipping the device
//! round trip entirely. Unlike LRU/FIFO, the HTR policy ranks rows by an
//! address profiler's access frequency and only caches the
//! highest-priority candidates — the paper shows this tracks embedding
//! reuse better than recency (Fig 15).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use simkit::hash::FastMap;

use simkit::SimDuration;

/// Replacement policy of the on-switch buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferPolicy {
    /// Hottest Recording: frequency-ranked admission and eviction.
    Htr,
    /// Least-recently-used.
    Lru,
    /// First-in first-out.
    Fifo,
}

/// The on-switch SRAM row cache.
///
/// # Examples
///
/// ```
/// use pifs_core::{BufferPolicy, OnSwitchBuffer};
///
/// // 512 KB of SRAM holding 256 B rows.
/// let mut buf = OnSwitchBuffer::new(BufferPolicy::Htr, 512 * 1024, 256);
/// assert!(!buf.access(42));  // cold miss (admitted)
/// assert!(buf.access(42));   // hit
/// assert!(buf.hit_ratio() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct OnSwitchBuffer {
    policy: BufferPolicy,
    capacity_rows: usize,
    capacity_bytes: u64,
    /// Resident rows → recency stamp (LRU) / insertion order (FIFO).
    resident: FastMap<u64, u64>,
    /// FIFO order queue.
    fifo: VecDeque<u64>,
    /// HTR address profiler: frequency of *every* observed row.
    profiler: FastMap<u64, u64>,
    /// Lazy min-heap of `(rank, key)` eviction candidates, where rank is
    /// the profiled frequency (HTR) or the recency stamp (LRU). Ranks
    /// only ever grow, so a popped entry whose rank no longer matches the
    /// key's current rank is a stale lower bound: it is re-pushed with
    /// the fresh rank and the pop retried. This finds the same coldest
    /// resident as a full scan in amortized O(log n) instead of O(n).
    coldest: BinaryHeap<Reverse<(u64, u64)>>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl OnSwitchBuffer {
    /// Creates a buffer of `capacity_bytes` SRAM caching rows of
    /// `row_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if the capacity holds fewer than one row.
    pub fn new(policy: BufferPolicy, capacity_bytes: u64, row_bytes: u64) -> Self {
        let capacity_rows = (capacity_bytes / row_bytes.max(1)) as usize;
        assert!(
            capacity_rows >= 1,
            "buffer of {capacity_bytes} B cannot hold a {row_bytes} B row"
        );
        OnSwitchBuffer {
            policy,
            capacity_rows,
            capacity_bytes,
            resident: FastMap::default(),
            fifo: VecDeque::new(),
            profiler: FastMap::default(),
            coldest: BinaryHeap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up row `key` (a row-granular address), updating profiler and
    /// replacement state; returns `true` on a hit. Misses consider the
    /// row for admission per the policy.
    pub fn access(&mut self, key: u64) -> bool {
        self.clock += 1;
        *self.profiler.entry(key).or_insert(0) += 1;
        if self.resident.contains_key(&key) {
            self.hits += 1;
            if self.policy == BufferPolicy::Lru {
                self.resident.insert(key, self.clock);
            }
            return true;
        }
        self.misses += 1;
        self.admit(key);
        false
    }

    /// Eviction rank of resident `key` under the current policy, or
    /// `None` when the key is not resident (or the policy keeps no
    /// ranks). HTR ranks by profiled frequency, LRU by recency stamp;
    /// both only ever grow, which is what makes the lazy heap exact.
    fn rank_of(&self, key: u64) -> Option<u64> {
        match self.policy {
            BufferPolicy::Htr => self
                .resident
                .contains_key(&key)
                .then(|| self.profiler.get(&key).copied().unwrap_or(0)),
            BufferPolicy::Lru => self.resident.get(&key).copied(),
            BufferPolicy::Fifo => None,
        }
    }

    /// Pops the coldest resident `(rank, key)` — the same `(rank, key)`
    /// minimum a full scan of `resident` would find — discarding entries
    /// for evicted keys and re-pushing entries whose rank went stale.
    fn pop_coldest(&mut self) -> Option<(u64, u64)> {
        while let Some(Reverse((rank, key))) = self.coldest.pop() {
            match self.rank_of(key) {
                Some(cur) if cur == rank => return Some((rank, key)),
                Some(cur) => {
                    debug_assert!(cur > rank, "ranks must be monotonic");
                    self.coldest.push(Reverse((cur, key)));
                }
                None => {} // evicted since it was pushed
            }
        }
        None
    }

    fn admit(&mut self, key: u64) {
        if self.resident.len() < self.capacity_rows {
            self.resident.insert(key, self.clock);
            self.fifo.push_back(key);
            if let Some(rank) = self.rank_of(key) {
                self.coldest.push(Reverse((rank, key)));
            }
            return;
        }
        match self.policy {
            BufferPolicy::Htr => {
                // Admit only if this row is now hotter than the coldest
                // resident row (by profiled frequency).
                let new_freq = self.profiler[&key];
                if let Some((victim_freq, victim)) = self.pop_coldest() {
                    if new_freq > victim_freq {
                        self.resident.remove(&victim);
                        self.resident.insert(key, self.clock);
                        self.coldest.push(Reverse((new_freq, key)));
                    } else {
                        // The coldest resident survives; keep its entry.
                        self.coldest.push(Reverse((victim_freq, victim)));
                    }
                }
            }
            BufferPolicy::Lru => {
                if let Some((_, victim)) = self.pop_coldest() {
                    self.resident.remove(&victim);
                }
                self.resident.insert(key, self.clock);
                self.coldest.push(Reverse((self.clock, key)));
            }
            BufferPolicy::Fifo => {
                while let Some(v) = self.fifo.pop_front() {
                    if self.resident.remove(&v).is_some() {
                        break;
                    }
                }
                self.resident.insert(key, self.clock);
                self.fifo.push_back(key);
            }
        }
    }

    /// SRAM access latency for this buffer's capacity. Table II quotes
    /// 0.91–4.19 ns across sizes; the model interpolates logarithmically
    /// from 32 KB (≈1 ns) to 1 MB (≈4 ns) — larger arrays have longer
    /// word lines, which is why the 1 MB point in Fig 15 loses speedup.
    pub fn access_latency(&self) -> SimDuration {
        let kb = (self.capacity_bytes / 1024).max(32) as f64;
        let lg = (kb / 32.0).log2(); // 0 at 32 KB … 5 at 1 MB
        let ns = 0.91 + lg * (4.19 - 0.91) / 5.0;
        SimDuration::from_ns(ns.round().max(1.0) as u64)
    }

    /// Hit ratio so far (0.0 when never accessed).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Resident rows.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// The configured policy.
    pub fn policy(&self) -> BufferPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::DetRng;

    #[test]
    fn capacity_is_respected() {
        let mut buf = OnSwitchBuffer::new(BufferPolicy::Lru, 1024, 256);
        for k in 0..100 {
            buf.access(k);
        }
        assert!(buf.len() <= 4);
    }

    #[test]
    fn lru_keeps_recently_used_rows() {
        let mut buf = OnSwitchBuffer::new(BufferPolicy::Lru, 2 * 256, 256);
        buf.access(1);
        buf.access(2);
        buf.access(1); // 1 is now most recent
        buf.access(3); // evicts 2
        assert!(buf.access(1));
        assert!(!buf.access(2));
    }

    #[test]
    fn fifo_evicts_oldest_insertion() {
        let mut buf = OnSwitchBuffer::new(BufferPolicy::Fifo, 2 * 256, 256);
        buf.access(1);
        buf.access(2);
        buf.access(1); // hit: does not refresh FIFO position
        buf.access(3); // evicts 1 (oldest inserted)
        assert!(!buf.access(1)); // miss — and this admission evicts 2
        assert!(buf.access(3)); // 3 survived both evictions
    }

    #[test]
    fn htr_protects_hot_rows_from_scan_pollution() {
        let mut buf = OnSwitchBuffer::new(BufferPolicy::Htr, 2 * 256, 256);
        // Make rows 1 and 2 hot.
        for _ in 0..10 {
            buf.access(1);
            buf.access(2);
        }
        // A long cold scan must not displace them.
        for k in 100..200 {
            buf.access(k);
        }
        assert!(buf.access(1));
        assert!(buf.access(2));
    }

    #[test]
    fn htr_eventually_admits_a_newly_hot_row() {
        let mut buf = OnSwitchBuffer::new(BufferPolicy::Htr, 2 * 256, 256);
        buf.access(1);
        buf.access(2);
        // Row 3 becomes hotter than both residents.
        for _ in 0..5 {
            buf.access(3);
        }
        assert!(buf.access(3), "profiled-hot row must be cached");
    }

    #[test]
    fn htr_beats_lru_and_fifo_on_skewed_traffic() {
        let run = |policy| {
            let mut buf = OnSwitchBuffer::new(policy, 8 * 256, 256);
            let mut rng = DetRng::new(17);
            for _ in 0..20_000 {
                // 30%: 8 hot rows; 70%: a wide cold space — embedding-like.
                let key = if rng.unit_f64() < 0.3 {
                    rng.below(8)
                } else {
                    100 + rng.below(5_000)
                };
                buf.access(key);
            }
            buf.hit_ratio()
        };
        let htr = run(BufferPolicy::Htr);
        let lru = run(BufferPolicy::Lru);
        let fifo = run(BufferPolicy::Fifo);
        assert!(htr > lru, "htr={htr:.3} lru={lru:.3}");
        assert!(htr > fifo, "htr={htr:.3} fifo={fifo:.3}");
    }

    #[test]
    fn latency_grows_with_capacity() {
        let small = OnSwitchBuffer::new(BufferPolicy::Htr, 64 * 1024, 256);
        let large = OnSwitchBuffer::new(BufferPolicy::Htr, 1024 * 1024, 256);
        assert!(large.access_latency() > small.access_latency());
        assert!(small.access_latency().as_ns() >= 1);
        assert!(large.access_latency().as_ns() <= 5);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn undersized_buffer_rejected() {
        let _ = OnSwitchBuffer::new(BufferPolicy::Htr, 100, 256);
    }

    #[test]
    fn hit_ratio_counts_correctly() {
        let mut buf = OnSwitchBuffer::new(BufferPolicy::Lru, 4 * 256, 256);
        buf.access(1);
        buf.access(1);
        buf.access(1);
        buf.access(2);
        assert_eq!(buf.hits(), 2);
        assert_eq!(buf.misses(), 2);
        assert!((buf.hit_ratio() - 0.5).abs() < 1e-9);
    }
}
