//! Instruction Ingress Registry (§IV-A3).
//!
//! "When a memory fetch based instruction arrives at the PC, it is
//! stored in Instruction Ingress Registry (IIR). New data arriving from
//! the CXL memory to the fabric switch is indexed in the IIR, and the
//! corresponding instruction is retrieved by comparing the address
//! field." This module models exactly that address-keyed matching, with
//! a bounded capacity so registry pressure is observable.

use simkit::hash::FastMap;

use cxlsim::M2sReq;

/// The address-indexed registry of in-flight fetch instructions.
///
/// # Examples
///
/// ```
/// use cxlsim::M2sReq;
/// use pifs_core::IngressRegistry;
///
/// let mut iir = IngressRegistry::new(4);
/// let req = M2sReq::data_fetch(0x40, 1, 1, 0);
/// iir.register(req).unwrap();
/// let matched = iir.match_return(0x40).unwrap();
/// assert_eq!(matched.sum_tag, 1);
/// assert!(iir.match_return(0x40).is_none()); // consumed
/// ```
#[derive(Debug, Clone)]
pub struct IngressRegistry {
    /// address → queued instructions at that address (duplicate row
    /// fetches to one address are legal and matched FIFO).
    pending: FastMap<u64, Vec<M2sReq>>,
    /// Recycled per-address queues: a registry entry is created and
    /// consumed once per in-flight fetch, so without this slab every
    /// register/match pair would allocate and free one `Vec`.
    spare: Vec<Vec<M2sReq>>,
    count: usize,
    capacity: usize,
    high_water: usize,
}

impl IngressRegistry {
    /// Creates a registry holding at most `capacity` in-flight entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "IIR capacity must be positive");
        IngressRegistry {
            pending: FastMap::default(),
            spare: Vec::new(),
            count: 0,
            capacity,
            high_water: 0,
        }
    }

    /// Registers an in-flight fetch; returns it back as `Err` when the
    /// registry is full (upstream must stall).
    pub fn register(&mut self, req: M2sReq) -> Result<(), M2sReq> {
        if self.count >= self.capacity {
            return Err(req);
        }
        let spare = &mut self.spare;
        self.pending
            .entry(req.address)
            .or_insert_with(|| spare.pop().unwrap_or_default())
            .push(req);
        self.count += 1;
        self.high_water = self.high_water.max(self.count);
        Ok(())
    }

    /// Matches returning data at `address` to its oldest registered
    /// instruction, removing it.
    pub fn match_return(&mut self, address: u64) -> Option<M2sReq> {
        let queue = self.pending.get_mut(&address)?;
        let req = queue.remove(0);
        if queue.is_empty() {
            let mut freed = self.pending.remove(&address).expect("entry present");
            freed.clear();
            self.spare.push(freed);
        }
        self.count -= 1;
        Some(req)
    }

    /// Entries currently in flight.
    pub fn in_flight(&self) -> usize {
        self.count
    }

    /// Peak occupancy observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// `true` when the registry cannot accept another instruction.
    pub fn is_full(&self) -> bool {
        self.count >= self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_addresses_match_fifo() {
        let mut iir = IngressRegistry::new(8);
        let a = M2sReq::data_fetch(0x100, 1, 1, 0);
        let b = M2sReq::data_fetch(0x100, 2, 1, 0);
        iir.register(a).unwrap();
        iir.register(b).unwrap();
        assert_eq!(iir.match_return(0x100).unwrap().sum_tag, 1);
        assert_eq!(iir.match_return(0x100).unwrap().sum_tag, 2);
        assert!(iir.match_return(0x100).is_none());
    }

    #[test]
    fn capacity_exerts_backpressure() {
        let mut iir = IngressRegistry::new(1);
        iir.register(M2sReq::data_fetch(0x0, 1, 1, 0)).unwrap();
        assert!(iir.is_full());
        let rejected = iir.register(M2sReq::data_fetch(0x40, 2, 1, 0));
        assert!(rejected.is_err());
        iir.match_return(0x0).unwrap();
        assert!(!iir.is_full());
    }

    #[test]
    fn unknown_address_matches_nothing() {
        let mut iir = IngressRegistry::new(4);
        assert!(iir.match_return(0xDEAD).is_none());
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let mut iir = IngressRegistry::new(4);
        for i in 0..3 {
            iir.register(M2sReq::data_fetch(i * 64, 0, 1, 0)).unwrap();
        }
        iir.match_return(0).unwrap();
        iir.match_return(64).unwrap();
        assert_eq!(iir.high_water(), 3);
        assert_eq!(iir.in_flight(), 1);
    }
}
