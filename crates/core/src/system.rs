//! The full-system model: hosts, fabric switches, CXL devices, tiered
//! pages, and the DLRM SLS workload running across them.
//!
//! [`SlsSystem`] composes every substrate in the workspace and executes a
//! [`tracegen::Trace`], producing the latency/bandwidth/occupancy metrics
//! each figure harness reports. One configuration type covers every
//! scheme in the paper's evaluation:
//!
//! | Scheme | compute | placement | buffer | OoO | page mgmt |
//! |---|---|---|---|---|---|
//! | Pond | Host | all-CXL | — | — | — |
//! | Pond+PM | Host | managed | — | — | yes |
//! | BEACON-S | Switch | all-CXL | — | in-order | — |
//! | RecNMP | Dimm | local+spill | DIMM cache | — | — |
//! | PIFS-Rec | Switch | managed | HTR | OoO | yes |
//!
//! Timing is resource-based: every shared medium (host FlexBus links,
//! switch transit, device links, DRAM banks/buses, the accumulate unit)
//! is a stateful resource that serializes contending work, so congestion
//! and parallelism emerge rather than being assumed.

use std::collections::VecDeque;

use cxlsim::{CxlParams, FabricSwitch, FlexBusLink, M2sReq, PortId, SwitchId, Topology, Type3Device};
use dlrm::{query, EmbeddingTable, ModelConfig, ThreadingMode};
use memsim::{DramConfig, DramDevice, MemOp};
use pagemgmt::{
    DeviceLoad, GlobalHotness, InitialPlacement, MigrationCostModel, PageId, PageTable, Tier,
    TierCapacities, SpreadConfig,
};
use simkit::{SimDuration, SimTime};
use tracegen::Trace;

use crate::acr::{AccumulateLogic, ClusterId};
use crate::buffer::{BufferPolicy, OnSwitchBuffer};
use crate::forward::{ForwardController, ForwardOutcome};
use crate::iir::IngressRegistry;
use crate::ooo::AccumEngine;

/// Where SLS accumulation executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComputeSite {
    /// On the host CPU (Pond): every row crosses the fabric to the host.
    Host,
    /// In the fabric switch process core (PIFS-Rec, BEACON).
    Switch,
    /// In the DIMM (RecNMP) for local rows; CXL rows fall back to host.
    Dimm,
}

/// Which page-management policy runs at epoch boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PmStyle {
    /// This paper's §IV-B design: global hotness, private-hot regions,
    /// cold-age demotion, embedding spreading.
    PifsGlobal,
    /// A TPP-like baseline: promote on re-reference, demote LRU-ish under
    /// pressure, no global view and no spreading (Fig 13(d)'s "TPP" bar).
    Tpp,
}

/// Dynamic page-management knobs (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmConfig {
    /// Policy flavour.
    pub style: PmStyle,
    /// Fraction of actively-used pages eligible to move per rebalance
    /// round (Fig 13(a); paper default 35 %).
    pub migrate_threshold: f64,
    /// Cold-age demotion threshold for the private hot region
    /// (Fig 13(d); paper default 20 %, optimum 16 %).
    pub cold_age_threshold: f64,
    /// Migration blocking discipline (Fig 13(a) red vs green).
    pub granularity: pagemgmt::MigrationGranularity,
}

impl Default for PmConfig {
    fn default() -> Self {
        PmConfig {
            style: PmStyle::PifsGlobal,
            migrate_threshold: 0.35,
            cold_age_threshold: 0.16,
            granularity: pagemgmt::MigrationGranularity::CacheLineBlock,
        }
    }
}

/// On-switch (or on-DIMM) buffer knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferConfig {
    /// Replacement policy.
    pub policy: BufferPolicy,
    /// SRAM capacity in bytes (Fig 15 sweeps 64 KB–1 MB; default 512 KB).
    pub capacity_bytes: u64,
}

impl Default for BufferConfig {
    fn default() -> Self {
        BufferConfig {
            policy: BufferPolicy::Htr,
            capacity_bytes: 512 * 1024,
        }
    }
}

/// Complete configuration of one simulated system.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// The DLRM being served (usually a scaled-down Table I model).
    pub model: ModelConfig,
    /// CXL Type 3 devices in the pool.
    pub n_devices: u16,
    /// Hosts issuing queries.
    pub n_hosts: u16,
    /// Fabric switches (devices and hosts are spread round-robin).
    pub n_switches: u16,
    /// CPU cores per host running the lookup stage.
    pub cores_per_host: u32,
    /// Outstanding memory requests per core (MLP window).
    pub outstanding: usize,
    /// Where accumulation happens.
    pub compute: ComputeSite,
    /// Initial page placement.
    pub placement: InitialPlacement,
    /// Local-DRAM capacity as a fraction of the embedding working set
    /// (the scaled stand-in for the paper's fixed 128 GB).
    pub local_capacity_frac: f64,
    /// Dynamic page management, if enabled.
    pub page_mgmt: Option<PmConfig>,
    /// On-switch buffer (PIFS) or DIMM cache (RecNMP), if present.
    pub buffer: Option<BufferConfig>,
    /// Out-of-order accumulation in the switch engine.
    pub ooo: bool,
    /// Extra per-row address-translation latency in the switch (BEACON's
    /// added translation logic, §II-B2), ns.
    pub translation_ns: u64,
    /// Lookup-stage threading strategy.
    pub threading: ThreadingMode,
    /// Fabric latency/bandwidth parameters.
    pub cxl: CxlParams,
    /// Batches excluded from measurement: they run first to warm the
    /// page placement, buffers and hotness state, modeling a system
    /// measured in steady state rather than from a cold boot. Their
    /// traffic and migration charges do not appear in [`RunMetrics`].
    pub warmup_batches: u32,
    /// RNG/workload seed echoed into metrics for provenance.
    pub seed: u64,
}

impl SystemConfig {
    fn base(model: ModelConfig) -> Self {
        SystemConfig {
            model,
            n_devices: 8,
            n_hosts: 1,
            n_switches: 1,
            cores_per_host: 8,
            outstanding: 16,
            compute: ComputeSite::Host,
            placement: InitialPlacement::AllCxl,
            local_capacity_frac: 0.2,
            page_mgmt: None,
            buffer: None,
            ooo: false,
            translation_ns: 0,
            threading: ThreadingMode::Batch,
            cxl: CxlParams::default(),
            warmup_batches: 0,
            seed: 0,
        }
    }

    /// Pond (§VI-B): CXL memory pooling, host-side compute, no
    /// management.
    pub fn pond(model: ModelConfig) -> Self {
        Self::base(model)
    }

    /// Pond plus this paper's page-management software (the "Pond + PM"
    /// baseline).
    pub fn pond_pm(model: ModelConfig) -> Self {
        SystemConfig {
            placement: InitialPlacement::CxlFraction { cxl_frac: 0.8 },
            page_mgmt: Some(PmConfig::default()),
            ..Self::base(model)
        }
    }

    /// BEACON-S (§VI-B): in-switch compute, CXL-only memory, added
    /// translation logic, in-order accumulation, no locality buffer.
    pub fn beacon(model: ModelConfig) -> Self {
        SystemConfig {
            compute: ComputeSite::Switch,
            translation_ns: 25,
            ..Self::base(model)
        }
    }

    /// RecNMP (§VI-B): DIMM-side accumulation with bank-level parallelism
    /// and a DIMM cache; fixed local DRAM with CXL spill handled by the
    /// host.
    pub fn recnmp(model: ModelConfig, local_frac: f64) -> Self {
        SystemConfig {
            compute: ComputeSite::Dimm,
            placement: InitialPlacement::AllLocal, // spills to CXL when full
            local_capacity_frac: local_frac,
            buffer: Some(BufferConfig::default()),
            ..Self::base(model)
        }
    }

    /// PIFS-Rec: in-switch compute, managed tiered placement, HTR
    /// buffer, out-of-order accumulation.
    pub fn pifs_rec(model: ModelConfig) -> Self {
        SystemConfig {
            compute: ComputeSite::Switch,
            placement: InitialPlacement::CxlFraction { cxl_frac: 0.8 },
            page_mgmt: Some(PmConfig::default()),
            buffer: Some(BufferConfig::default()),
            ooo: true,
            ..Self::base(model)
        }
    }

    /// PIFS-Rec on a laptop-scale RMC1 — the quickstart configuration.
    pub fn pifs_rec_default() -> Self {
        Self::pifs_rec(ModelConfig::rmc1().scaled_down(4))
    }

    /// Total embedding pages for this model.
    pub fn n_pages(&self) -> u64 {
        let table_bytes = page_align(self.model.emb_num * self.model.row_bytes());
        (table_bytes / pagemgmt::PAGE_BYTES) * self.model.n_tables as u64
    }
}

/// Everything a run measures.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// End-to-end makespan of the trace (including exposed migration
    /// overhead), ns.
    pub total_ns: u64,
    /// SLS bags processed.
    pub bags: u64,
    /// Row lookups performed.
    pub lookups: u64,
    /// Lookups served from local DRAM.
    pub local_lookups: u64,
    /// Lookups served from the remote socket.
    pub remote_lookups: u64,
    /// Lookups served over CXL.
    pub cxl_lookups: u64,
    /// On-switch buffer hits (0 when no buffer).
    pub buffer_hits: u64,
    /// On-switch buffer misses.
    pub buffer_misses: u64,
    /// Per-device access counts (Fig 13(b)).
    pub device_accesses: Vec<u64>,
    /// Page migrations performed.
    pub migrations: u64,
    /// Exposed migration overhead, ns.
    pub migration_ns: u64,
    /// In-order accumulation stalls.
    pub ooo_stalls: u64,
    /// Swap-register spills to SRAM.
    pub sram_spills: u64,
    /// Bytes over the host↔switch links.
    pub host_link_bytes: u64,
    /// Functional checksum of every bag result (placement-independent up
    /// to FP32 reassociation).
    pub checksum: f64,
    /// Mean bag latency, ns.
    pub mean_bag_ns: f64,
}

impl RunMetrics {
    /// Application bandwidth: embedding bytes touched per wall-clock
    /// second, in GB/s (the Fig 5/6 y-axis before normalization).
    pub fn app_bandwidth_gbps(&self, row_bytes: u64) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            (self.lookups * row_bytes) as f64 / self.total_ns as f64
        }
    }

    /// Buffer hit ratio.
    pub fn buffer_hit_ratio(&self) -> f64 {
        let t = self.buffer_hits + self.buffer_misses;
        if t == 0 {
            0.0
        } else {
            self.buffer_hits as f64 / t as f64
        }
    }

    /// Migration overhead as a fraction of total latency (Fig 13(a)
    /// right axis).
    pub fn migration_cost_frac(&self) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            self.migration_ns as f64 / self.total_ns as f64
        }
    }
}

fn page_align(bytes: u64) -> u64 {
    bytes.div_ceil(pagemgmt::PAGE_BYTES) * pagemgmt::PAGE_BYTES
}

/// Spreads a (scaled-down) embedding address across the full physical
/// address space of a memory device. Scaled tables occupy a few MB,
/// which would alias onto a handful of DRAM bank-rows and serialize on
/// tRC — an artifact real multi-GB tables do not have. Hashing the
/// 256 B-aligned block index preserves intra-row locality while spreading
/// blocks over all banks, matching the bank-utilization of full-size
/// tables.
fn spread_addr(addr: u64) -> u64 {
    let block = addr / 256;
    let offset = addr % 256;
    let mut h = block.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 31;
    (h % (1 << 34)) / 256 * 256 + offset
}

#[derive(Debug, Default, Clone)]
struct CounterOffsets {
    stalls: u64,
    spills: u64,
    hits: u64,
    misses: u64,
    link_bytes: u64,
}

struct HostCtx {
    cores: Vec<SimTime>,
    req_link: FlexBusLink,
    rsp_link: FlexBusLink,
    dram: DramDevice,
    dimm_cache: Option<OnSwitchBuffer>,
    next_free: SimTime,
}

struct SwitchCtx {
    #[allow(dead_code)]
    sw: FabricSwitch,
    engine: AccumEngine,
    buffer: Option<OnSwitchBuffer>,
    iir: IngressRegistry,
    acr: AccumulateLogic,
    fc: ForwardController,
    /// Instruction decode pipeline occupancy.
    decode_free: SimTime,
}

/// The composed system.
pub struct SlsSystem {
    cfg: SystemConfig,
    topo: Topology,
    switches: Vec<SwitchCtx>,
    devices: Vec<Type3Device>,
    hosts: Vec<HostCtx>,
    remote_link: FlexBusLink,
    remote_dram: DramDevice,
    page_table: PageTable,
    tables: Vec<EmbeddingTable>,
    hotness: GlobalHotness,
    next_cluster: u64,
    pm_epoch: u64,
    metrics: RunMetrics,
    /// Per-device page-access counts within the current PM epoch.
    epoch_dev_pages: Vec<std::collections::HashMap<PageId, u64>>,
}

/// Host-side cost of issuing one instruction (decode + queue into the
/// CXL controller).
const ISSUE_NS: u64 = 2;
/// Host snoop-detection latency once a result lands (§IV-A2's
/// CXL.cache-based monitoring).
const SNOOP_NS: u64 = 10;
/// Process-core instruction decode occupancy per instruction.
const DECODE_NS: u64 = 1;
/// ACR concurrent-cluster capacity.
const ACR_CAPACITY: usize = 128;
/// IIR in-flight capacity.
const IIR_CAPACITY: usize = 512;
/// Swap registers in the OoO engine.
const SWAP_REGS: usize = 8;

impl SlsSystem {
    /// Builds an idle system from `cfg`, laying out the model's embedding
    /// tables and applying the initial placement.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no devices for a CXL
    /// placement, zero hosts, etc.).
    pub fn new(cfg: SystemConfig) -> Self {
        assert!(cfg.n_hosts >= 1, "need at least one host");
        assert!(cfg.n_devices >= 1, "need at least one device");
        assert!(cfg.n_switches >= 1, "need at least one switch");

        let topo = if cfg.n_switches == 1 {
            Topology::single_switch(cfg.n_devices as usize, cfg.n_hosts as usize, cfg.cxl)
        } else {
            Topology::custom(
                cfg.n_switches,
                (0..cfg.n_devices)
                    .map(|d| SwitchId(d % cfg.n_switches))
                    .collect(),
                (0..cfg.n_hosts)
                    .map(|h| SwitchId(h % cfg.n_switches))
                    .collect(),
                cfg.cxl,
            )
        };

        let dim = cfg.model.emb_dim;
        let switches = (0..cfg.n_switches)
            .map(|s| {
                let mut sw = FabricSwitch::new(s, cfg.n_hosts as usize, cfg.cxl);
                for d in topo.devices_on(SwitchId(s)) {
                    sw.bind_device(PortId(d as u16));
                }
                SwitchCtx {
                    sw,
                    engine: AccumEngine::new(cfg.ooo, dim, SWAP_REGS),
                    buffer: if cfg.compute == ComputeSite::Switch {
                        cfg.buffer.map(|b| {
                            OnSwitchBuffer::new(b.policy, b.capacity_bytes, cfg.model.row_bytes())
                        })
                    } else {
                        None
                    },
                    iir: IngressRegistry::new(IIR_CAPACITY),
                    acr: AccumulateLogic::new(ACR_CAPACITY),
                    fc: ForwardController::new(),
                    decode_free: SimTime::ZERO,
                }
            })
            .collect();

        let devices = (0..cfg.n_devices)
            .map(|d| Type3Device::new(d, cfg.cxl))
            .collect();

        let hosts = (0..cfg.n_hosts)
            .map(|_| HostCtx {
                cores: vec![SimTime::ZERO; cfg.cores_per_host as usize],
                req_link: FlexBusLink::new(&cfg.cxl),
                rsp_link: FlexBusLink::new(&cfg.cxl),
                // The characterization host populates 12 DDR5 channels
                // per socket (§III); the scaled host keeps that width.
                dram: DramDevice::new(DramConfig {
                    org: memsim::DramOrg {
                        channels: 12,
                        ..memsim::DramOrg::table2_local()
                    },
                    ..DramConfig::ddr5_4800_local()
                }),
                dimm_cache: if cfg.compute == ComputeSite::Dimm {
                    cfg.buffer.map(|b| {
                        OnSwitchBuffer::new(b.policy, b.capacity_bytes, cfg.model.row_bytes())
                    })
                } else {
                    None
                },
                next_free: SimTime::ZERO,
            })
            .collect();

        // Embedding layout: page-aligned contiguous tables.
        let table_bytes = page_align(cfg.model.emb_num * cfg.model.row_bytes());
        let tables: Vec<EmbeddingTable> = (0..cfg.model.n_tables)
            .map(|t| {
                EmbeddingTable::new(t, cfg.model.emb_num, cfg.model.emb_dim, t as u64 * table_bytes)
            })
            .collect();

        let n_pages = cfg.n_pages();
        let local_pages = ((n_pages as f64 * cfg.local_capacity_frac).ceil() as u64).max(1);
        let caps = TierCapacities::new(
            local_pages,
            n_pages, // the remote socket can always absorb the spill
            cfg.n_devices,
            // Generous per-device capacity: the balance constraint is
            // access load, not space.
            (n_pages / cfg.n_devices as u64 + 1) * 2,
        );
        let mut page_table = PageTable::new(caps);
        cfg.placement.apply(&mut page_table, n_pages);

        let n_hosts = cfg.n_hosts as usize;
        let n_devices = cfg.n_devices as usize;
        SlsSystem {
            cfg,
            topo,
            switches,
            devices,
            hosts,
            remote_link: FlexBusLink::new(&CxlParams {
                link_gbps: 32,
                port_latency_ns: 60,
                ..CxlParams::default()
            }),
            // Partial channel population: the §III observation that
            // accessing a slice of a remote socket's memory yields poor
            // effective bandwidth.
            remote_dram: DramDevice::new(DramConfig {
                org: memsim::DramOrg {
                    channels: 1,
                    ..memsim::DramOrg::table2_local()
                },
                ..DramConfig::ddr5_4800_local()
            }),
            page_table,
            tables,
            hotness: GlobalHotness::new(n_hosts),
            next_cluster: 0,
            pm_epoch: 0,
            metrics: RunMetrics::default(),
            epoch_dev_pages: vec![std::collections::HashMap::new(); n_devices],
        }
    }

    /// The configuration this system was built from.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Read access to the placement table (for tests and harnesses).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Removes the process core from switch `idx` (CNV = 0), forcing the
    /// §IV-C2 fallback where the host-local switch accumulates on its
    /// behalf.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn disable_process_core(&mut self, idx: usize) {
        self.switches[idx].sw.set_process_core(false);
    }

    fn row_addr(&self, table: u32, row: u64) -> u64 {
        self.tables[table as usize].row_addr(row)
    }

    fn tier_of_addr(&self, addr: u64) -> Tier {
        self.page_table
            .tier_of(PageId::of_addr(addr))
            .expect("every embedding page is placed at construction")
    }

    /// Runs `trace` to completion and returns the metrics.
    ///
    /// # Panics
    ///
    /// Panics if the trace's table count or row space exceeds the model's.
    pub fn run_trace(&mut self, trace: &Trace) -> RunMetrics {
        assert!(
            trace.n_tables <= self.cfg.model.n_tables,
            "trace has more tables than the model"
        );
        assert!(
            trace.rows_per_table <= self.cfg.model.emb_num,
            "trace rows exceed the model's embedding count"
        );

        self.metrics = RunMetrics::default();
        let mut bag_latency_sum = 0u128;
        let warmup = (self.cfg.warmup_batches as usize).min(trace.batches.len().saturating_sub(1));
        let mut measure_from: Vec<SimTime> = self.hosts.iter().map(|h| h.next_free).collect();
        let mut dev_offset: Vec<u64> = vec![0; self.devices.len()];
        let mut counter_offsets = CounterOffsets::default();
        if warmup == 0 {
            self.snapshot_counters(&mut dev_offset, &mut counter_offsets);
        }

        let parts = query::partition(
            trace.n_tables,
            trace.batch_size,
            self.cfg.cores_per_host,
            self.cfg.threading,
        );

        for (bi, _batch) in trace.batches.iter().enumerate() {
            let host_idx = bi % self.cfg.n_hosts as usize;
            let batch_start = self.hosts[host_idx].next_free;
            let mut batch_done = batch_start;

            for (core_idx, items) in parts.iter().enumerate() {
                self.hosts[host_idx].cores[core_idx] = batch_start;
                for item in items {
                    for sample in item.sample_begin..item.sample_end {
                        let bag: Vec<u64> = trace.bag(bi, item.table, sample).to_vec();
                        let issue = self.hosts[host_idx].cores[core_idx];
                        let (done, core_free) =
                            self.process_bag(host_idx, issue, item.table, &bag);
                        self.hosts[host_idx].cores[core_idx] = core_free;
                        batch_done = batch_done.max(done);
                        bag_latency_sum += done.saturating_since(issue).as_ns() as u128;
                        self.metrics.bags += 1;
                    }
                }
            }

            // Page-management epoch at the batch boundary.
            if self.cfg.page_mgmt.is_some() {
                let overhead = self.run_pm_epoch(host_idx);
                batch_done += overhead;
                self.metrics.migration_ns += overhead.as_ns();
            }
            self.hosts[host_idx].next_free = batch_done;

            if bi + 1 == warmup {
                // Steady state reached: reset every measured quantity.
                self.metrics = RunMetrics::default();
                bag_latency_sum = 0;
                measure_from = self.hosts.iter().map(|h| h.next_free).collect();
                self.snapshot_counters(&mut dev_offset, &mut counter_offsets);
            }
        }

        self.metrics.total_ns = self
            .hosts
            .iter()
            .zip(&measure_from)
            .map(|(h, &from)| h.next_free.saturating_since(from).as_ns())
            .max()
            .unwrap_or(0);
        self.metrics.device_accesses = self
            .devices
            .iter()
            .zip(&dev_offset)
            .map(|(d, &off)| d.access_count() - off)
            .collect();
        for s in &self.switches {
            self.metrics.ooo_stalls += s.engine.stalls;
            self.metrics.sram_spills += s.engine.sram_spills;
            if let Some(b) = &s.buffer {
                self.metrics.buffer_hits += b.hits();
                self.metrics.buffer_misses += b.misses();
            }
        }
        for h in &self.hosts {
            if let Some(b) = &h.dimm_cache {
                self.metrics.buffer_hits += b.hits();
                self.metrics.buffer_misses += b.misses();
            }
            self.metrics.host_link_bytes += h.req_link.total_bytes() + h.rsp_link.total_bytes();
        }
        self.metrics.ooo_stalls -= counter_offsets.stalls;
        self.metrics.sram_spills -= counter_offsets.spills;
        self.metrics.buffer_hits -= counter_offsets.hits;
        self.metrics.buffer_misses -= counter_offsets.misses;
        self.metrics.host_link_bytes -= counter_offsets.link_bytes;
        self.metrics.mean_bag_ns = if self.metrics.bags == 0 {
            0.0
        } else {
            bag_latency_sum as f64 / self.metrics.bags as f64
        };
        self.metrics.clone()
    }

    /// Records current cumulative counters so the measured window can
    /// subtract everything that happened during warmup.
    fn snapshot_counters(&self, dev_offset: &mut [u64], off: &mut CounterOffsets) {
        for (slot, d) in dev_offset.iter_mut().zip(&self.devices) {
            *slot = d.access_count();
        }
        *off = CounterOffsets::default();
        for s in &self.switches {
            off.stalls += s.engine.stalls;
            off.spills += s.engine.sram_spills;
            if let Some(b) = &s.buffer {
                off.hits += b.hits();
                off.misses += b.misses();
            }
        }
        for h in &self.hosts {
            if let Some(b) = &h.dimm_cache {
                off.hits += b.hits();
                off.misses += b.misses();
            }
            off.link_bytes += h.req_link.total_bytes() + h.rsp_link.total_bytes();
        }
    }

    /// Processes one bag; returns `(completion_time, core_free_time)`.
    fn process_bag(
        &mut self,
        host_idx: usize,
        issue: SimTime,
        table: u32,
        rows: &[u64],
    ) -> (SimTime, SimTime) {
        self.metrics.lookups += rows.len() as u64;
        let dim = self.cfg.model.emb_dim as usize;
        let row_bytes = self.cfg.model.row_bytes();
        let acc_ns = (dim as u64).div_ceil(16).max(1);

        // Classify rows by tier; record hotness.
        let mut local = Vec::new();
        let mut remote = Vec::new();
        let mut cxl: Vec<(u16, u64, u64)> = Vec::new(); // (device, row, addr)
        for &row in rows {
            let addr = self.row_addr(table, row);
            let page = PageId::of_addr(addr);
            self.hotness.host_mut(host_idx).record(page);
            match self.tier_of_addr(addr) {
                Tier::Local => local.push((row, addr)),
                Tier::Remote => remote.push((row, addr)),
                Tier::Cxl(d) => {
                    let d = d % self.cfg.n_devices;
                    self.epoch_dev_pages[d as usize]
                        .entry(page)
                        .and_modify(|c| *c += 1)
                        .or_insert(1);
                    cxl.push((d, row, addr));
                }
            }
        }
        self.metrics.local_lookups += local.len() as u64;
        self.metrics.remote_lookups += remote.len() as u64;
        self.metrics.cxl_lookups += cxl.len() as u64;

        let mut acc = vec![0.0f32; dim];
        let mut core_busy = issue;
        let mut done = issue;

        // --- Local rows -------------------------------------------------
        if !local.is_empty() {
            let (local_done, core_after) =
                self.process_local_rows(host_idx, core_busy, table, &local, &mut acc, acc_ns);
            done = done.max(local_done);
            core_busy = core_after;
        }

        // --- Remote-socket rows ------------------------------------------
        if !remote.is_empty() {
            let mut window: VecDeque<SimTime> = VecDeque::new();
            let mut t = core_busy;
            let mut last = core_busy;
            for &(row, addr) in &remote {
                if window.len() >= self.cfg.outstanding {
                    t = t.max(window.pop_front().expect("window non-empty"));
                }
                let sent = self.remote_link.transfer(t, 16);
                let data =
                    self.remote_dram
                        .access_span(sent, spread_addr(addr), row_bytes, MemOp::Read);
                let back = self.remote_link.transfer(data, row_bytes);
                let fold_done = back + SimDuration::from_ns(acc_ns);
                dlrm::sls::accumulate_row(&mut acc, &self.tables[table as usize], row, 1.0);
                window.push_back(fold_done);
                t += SimDuration::from_ns(ISSUE_NS);
                last = last.max(fold_done);
            }
            done = done.max(last);
            core_busy = core_busy.max(last); // synchronous on the core
        }

        // --- CXL rows -----------------------------------------------------
        if !cxl.is_empty() {
            let (cxl_done, core_after) = match self.cfg.compute {
                ComputeSite::Host | ComputeSite::Dimm => {
                    self.cxl_rows_host_compute(host_idx, core_busy, table, &cxl, &mut acc, acc_ns)
                }
                ComputeSite::Switch => {
                    self.cxl_rows_switch_compute(host_idx, core_busy, table, &cxl, &mut acc)
                }
            };
            done = done.max(cxl_done);
            core_busy = core_after;
        }

        self.metrics.checksum += acc.iter().map(|&x| x as f64).sum::<f64>();
        (done, core_busy.max(issue))
    }

    /// Local rows: host-compute everywhere except RecNMP, which folds in
    /// the DIMM using bank-level parallelism and its DIMM cache.
    fn process_local_rows(
        &mut self,
        host_idx: usize,
        start: SimTime,
        table: u32,
        rows: &[(u64, u64)],
        acc: &mut [f32],
        acc_ns: u64,
    ) -> (SimTime, SimTime) {
        let row_bytes = self.cfg.model.row_bytes();
        let is_nmp = self.cfg.compute == ComputeSite::Dimm;
        let mut window: VecDeque<SimTime> = VecDeque::new();
        let mut t = start;
        let mut last = start;
        for &(row, addr) in rows {
            if !is_nmp && window.len() >= self.cfg.outstanding {
                t = t.max(window.pop_front().expect("window non-empty"));
            }
            let host = &mut self.hosts[host_idx];
            let mut served_from_cache = false;
            if is_nmp {
                if let Some(cache) = host.dimm_cache.as_mut() {
                    served_from_cache = cache.access(addr);
                }
            }
            let data = if served_from_cache {
                let lat = host
                    .dimm_cache
                    .as_ref()
                    .expect("cache present")
                    .access_latency();
                t + lat
            } else {
                host.dram
                    .access_span(t, spread_addr(addr), row_bytes, MemOp::Read)
            };
            // RecNMP gathers with bank-level parallelism inside the DIMM:
            // the whole bag is issued at once and folds pipeline behind
            // the data (§VI-C1: "the latter performs data fetch with
            // bank-level parallelism"). Hosts fold on the core with a
            // bounded MLP window.
            let fold_done = data + SimDuration::from_ns(if is_nmp { acc_ns / 2 } else { acc_ns });
            dlrm::sls::accumulate_row(acc, &self.tables[table as usize], row, 1.0);
            window.push_back(fold_done);
            t += SimDuration::from_ns(if is_nmp { 1 } else { ISSUE_NS });
            last = last.max(fold_done);
        }
        // Local gathers are software-pipelined across bags (prefetch
        // hides local DRAM latency — the CPU optimizations of the
        // paper's [8]); the core is free once the loads are in flight.
        // RecNMP likewise returns asynchronously with its pooled result.
        (last, t)
    }

    /// Pond-style CXL handling: each row crosses the whole fabric to the
    /// host, which folds it on a core.
    fn cxl_rows_host_compute(
        &mut self,
        host_idx: usize,
        start: SimTime,
        table: u32,
        rows: &[(u16, u64, u64)],
        acc: &mut [f32],
        acc_ns: u64,
    ) -> (SimTime, SimTime) {
        let row_bytes = self.cfg.model.row_bytes();
        let host_switch = self.topo.host_switch(host_idx);
        let mut window: VecDeque<SimTime> = VecDeque::new();
        let mut t = start;
        let mut last = start;
        for &(dev, row, addr) in rows {
            if window.len() >= self.cfg.outstanding {
                t = t.max(window.pop_front().expect("window non-empty"));
            }
            let sent = self.hosts[host_idx]
                .req_link
                .transfer(t, M2sReq::WIRE_BYTES);
            let dev_switch = self.topo.device_switch(dev as usize);
            let hop = self.topo.hop_latency(host_switch, dev_switch);
            let at_switch = self.switches[dev_switch.0 as usize].sw.transit(sent) + hop;
            let data_at_switch =
                self.devices[dev as usize].read(at_switch, spread_addr(addr), row_bytes);
            let back_at_host_switch = data_at_switch + hop;
            let at_host = self.hosts[host_idx]
                .rsp_link
                .transfer(back_at_host_switch, row_bytes + M2sReq::WIRE_BYTES);
            let fold_done = at_host + SimDuration::from_ns(acc_ns);
            dlrm::sls::accumulate_row(acc, &self.tables[table as usize], row, 1.0);
            window.push_back(fold_done);
            t += SimDuration::from_ns(ISSUE_NS);
            last = last.max(fold_done);
        }
        // The gather loop is software-pipelined across bags; the run is
        // bound by fabric bandwidth (every row crosses the host link,
        // which is Pond's structural handicap), not by one bag's RTT.
        (last, t)
    }

    /// PIFS/BEACON CXL handling: the host streams `Configuration` +
    /// `DataFetch` instructions and goes on with its life; the switch
    /// fetches, accumulates and pushes the result back for the snooping
    /// host.
    fn cxl_rows_switch_compute(
        &mut self,
        host_idx: usize,
        start: SimTime,
        table: u32,
        rows: &[(u16, u64, u64)],
        acc: &mut [f32],
    ) -> (SimTime, SimTime) {
        let row_bytes = self.cfg.model.row_bytes();
        let dim = self.cfg.model.emb_dim;
        let host_switch = self.topo.host_switch(host_idx);
        let local_sw_idx = host_switch.0 as usize;
        let cluster = ClusterId(self.next_cluster);
        self.next_cluster += 1;

        // Group rows by the switch homing their device.
        let mut by_switch: Vec<(SwitchId, Vec<(u16, u64, u64)>)> = Vec::new();
        for &(dev, row, addr) in rows {
            let s = self.topo.device_switch(dev as usize);
            match by_switch.iter_mut().find(|(sid, _)| *sid == s) {
                Some((_, v)) => v.push((dev, row, addr)),
                None => by_switch.push((s, vec![(dev, row, addr)])),
            }
        }

        // Host issues Configuration + one DataFetch per row on its
        // request link, then is free (asynchronous communication).
        let chunks = (row_bytes.div_ceil(16)).min(8) as u8;
        let config_req = M2sReq::configuration(0xF000_0000, (cluster.0 & 0x1FF) as u16, rows.len() as u16, host_idx as u16);
        debug_assert_eq!(config_req.opcode, cxlsim::MemOpcode::Configuration);
        let mut t = start;
        let mut instr_arrivals: Vec<(SwitchId, u16, u64, u64, SimTime)> = Vec::new();
        let config_arrival = {
            let sent = self.hosts[host_idx].req_link.transfer(t, M2sReq::WIRE_BYTES);
            t += SimDuration::from_ns(ISSUE_NS);
            self.switches[local_sw_idx].sw.transit(sent)
        };
        for &(dev, row, addr) in rows {
            let req = M2sReq::data_fetch(addr, (cluster.0 & 0x1FF) as u16, chunks, host_idx as u16);
            debug_assert!(crate::instrflow::check_memopcode(&req) == crate::InstrRoute::ProcessCore);
            let sent = self.hosts[host_idx].req_link.transfer(t, M2sReq::WIRE_BYTES);
            t += SimDuration::from_ns(ISSUE_NS);
            let s = self.topo.device_switch(dev as usize);
            let hop = self.topo.hop_latency(host_switch, s);
            let arrival = self.switches[local_sw_idx].sw.transit(sent) + hop;
            instr_arrivals.push((s, dev, row, addr, arrival));
        }
        let core_free = t;

        // The local ACR opens the cluster when the Configuration lands.
        let _ = config_arrival;
        self.switches[local_sw_idx]
            .acr
            .configure(cluster, rows.len() as u32, 0xF000_0000, dim)
            .unwrap_or_else(|_| panic!("ACR backpressure not modeled as fatal: raise ACR_CAPACITY"));
        self.switches[local_sw_idx]
            .fc
            .open(cluster, by_switch.len() as u32, dim);

        // Each switch group accumulates its sub-cluster.
        let mut final_done = config_arrival;
        let mut merged_acc: Option<Vec<f32>> = None;
        for (sid, group) in &by_switch {
            // §IV-C2 versatility: a remote switch without a process core
            // (CNV = 0) cannot accumulate — the local switch does all the
            // work and raw rows stream across the inter-switch fabric.
            let remote_cnv = self.switches[sid.0 as usize].sw.cnv();
            let s_idx = if remote_cnv { sid.0 as usize } else { local_sw_idx };
            let mut sub_acc = vec![0.0f32; dim as usize];
            let mut sub_last = SimTime::ZERO;
            for &(dev, row, addr) in group {
                // Locate this instruction's arrival at the switch.
                let arrival = instr_arrivals
                    .iter()
                    .find(|(s2, d2, r2, a2, _)| s2 == sid && *d2 == dev && *r2 == row && *a2 == addr)
                    .map(|&(_, _, _, _, at)| at)
                    .expect("instruction recorded");
                // Decode (+ BEACON's translation logic) serializes in the PC.
                let sw = &mut self.switches[s_idx];
                let decode_start = arrival.max(sw.decode_free);
                sw.decode_free = decode_start + SimDuration::from_ns(DECODE_NS);
                let decoded =
                    sw.decode_free + SimDuration::from_ns(self.cfg.translation_ns);

                // Register in the IIR, repack and fetch (buffer first).
                let fetch_req = M2sReq::data_fetch(addr, (cluster.0 & 0x1FF) as u16, chunks, host_idx as u16);
                let _ = sw.iir.register(fetch_req);
                let hit = sw.buffer.as_mut().map(|b| b.access(addr)).unwrap_or(false);
                let mut data_ready = if hit {
                    let lat = sw.buffer.as_ref().expect("buffer present").access_latency();
                    decoded + lat
                } else {
                    self.devices[dev as usize]
                        .read(decoded, spread_addr(addr), row_bytes)
                };
                if !remote_cnv {
                    // Raw row crosses to the computing (local) switch.
                    data_ready = data_ready
                        + self.topo.hop_latency(*sid, host_switch)
                        + SimDuration::from_ns(row_bytes / self.cfg.cxl.link_gbps.max(1) + 1);
                }
                let sw = &mut self.switches[s_idx];
                sw.iir.match_return(addr);
                let folded = sw.engine.process_row(data_ready, cluster);
                dlrm::sls::accumulate_row(&mut sub_acc, &self.tables[table as usize], row, 1.0);
                sub_last = sub_last.max(folded);
            }
            self.switches[s_idx].engine.complete_cluster(cluster);

            // Ship the sub-result to the local switch (free when the
            // accumulation already happened locally).
            let hop = if remote_cnv {
                self.topo.hop_latency(*sid, host_switch)
            } else {
                simkit::SimDuration::ZERO
            };
            let sub_at_local = sub_last + hop;
            match self.switches[local_sw_idx]
                .fc
                .on_sub_result(cluster, &sub_acc, sub_at_local)
            {
                ForwardOutcome::Waiting => {}
                ForwardOutcome::Complete(vec, at) => {
                    merged_acc = Some(vec);
                    final_done = final_done.max(at);
                }
            }
        }

        // Retire the cluster in the ACR by feeding the merged result as
        // bookkeeping (counts were tracked per arrival by the engine; the
        // ACR holds the canonical counter).
        let merged = merged_acc.expect("all sub-clusters reported");
        for _ in 0..rows.len() {
            // Drain the SumCandidateCounter.
            let zero = vec![0.0f32; dim as usize];
            let _ = self.switches[local_sw_idx].acr.on_row(cluster, &zero, 1.0);
        }
        for (a, &v) in acc.iter_mut().zip(&merged) {
            *a += v;
        }

        // Result returns to the reserved host address via CXL.cache D2H;
        // the host's snooping daemon notices shortly after.
        let at_host = self.hosts[host_idx]
            .rsp_link
            .transfer(final_done, row_bytes + M2sReq::WIRE_BYTES);
        let visible = at_host + SimDuration::from_ns(SNOOP_NS);
        (visible, core_free)
    }

    /// One page-management epoch: global hotness classification,
    /// hot-page promotion with claim-&-swap, cold-age demotion, and
    /// embedding spreading across devices. Returns the exposed overhead.
    fn run_pm_epoch(&mut self, host_idx: usize) -> SimDuration {
        let Some(pm) = self.cfg.page_mgmt else {
            return SimDuration::ZERO;
        };
        let cost = match pm.granularity {
            pagemgmt::MigrationGranularity::PageBlock => MigrationCostModel::page_block(),
            pagemgmt::MigrationGranularity::CacheLineBlock => {
                MigrationCostModel::cache_line_block()
            }
        };
        let migrations_before = self.page_table.migrations();

        if pm.style == PmStyle::Tpp {
            return self.run_tpp_epoch(&cost, migrations_before);
        }

        // 1. Promote globally hottest pages into local DRAM. Promotion is
        // budgeted per epoch so migration overhead amortizes over the
        // run instead of thrashing on the first batch.
        let hot_capacity = self.page_table.capacities().local_pages as usize;
        // Aggressive promotion while the hot set is being learned, then a
        // trickle: steady-state churn would otherwise chase Zipf-tail
        // sampling noise forever.
        let promote_budget = if self.pm_epoch < 4 {
            (hot_capacity / 4).max(8) as u64
        } else {
            // Steady-state trickle, scaled by the migrate threshold
            // (Fig 13(a)'s knob: a higher threshold moves more pages).
            ((pm.migrate_threshold * 48.0) as u64).max(4)
        };
        let classes = self.hotness.classify(hot_capacity);
        let mut promoted = 0u64;
        let mut hot_pages: Vec<(u64, PageId)> = classes
            .iter()
            .filter(|(_, c)| matches!(c, pagemgmt::PageClass::PrivateHot(_)))
            .map(|(&p, _)| (self.hotness_count(host_idx, p), p))
            // Tail pages with a couple of accesses churn in and out of
            // the hot set; only promote pages with real heat.
            .filter(|&(heat, _)| heat >= 4)
            .collect();
        // Hottest first, deterministic tie-break.
        hot_pages.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let hot_pages: Vec<PageId> = hot_pages.into_iter().map(|(_, p)| p).collect();
        // Current local residents, coldest first, available for swapping.
        let mut residents: Vec<(PageId, u64)> = self
            .page_table
            .iter()
            .filter(|&(_, t)| t == Tier::Local)
            .map(|(p, _)| (p, self.hotness_count(host_idx, p)))
            .collect();
        residents.sort_unstable_by_key(|&(p, c)| (c, p));
        let mut resident_cursor = 0usize;
        for page in hot_pages {
            if promoted >= promote_budget {
                break;
            }
            if self.page_table.tier_of(page) == Some(Tier::Local) {
                continue;
            }
            if self.page_table.move_page(page, Tier::Local).is_ok() {
                promoted += 1;
                continue;
            }
            // Local full: claim & swap with the coldest resident.
            while resident_cursor < residents.len() {
                let (victim, victim_heat) = residents[resident_cursor];
                resident_cursor += 1;
                if self.page_table.tier_of(victim) != Some(Tier::Local) {
                    continue;
                }
                // Hysteresis: only displace a resident when the candidate
                // is clearly hotter, otherwise promotion thrashes.
                if self.hotness_count(host_idx, page) < victim_heat.saturating_mul(2).max(4) {
                    break; // residents are comparably hot; stop promoting
                }
                self.page_table.swap(page, victim);
                promoted += 1;
                break;
            }
            if resident_cursor >= residents.len() {
                break;
            }
        }

        // 2. Cold-age demotion of stale private-hot pages (bounded per
        // epoch so demotion churn cannot swamp useful work).
        let mut demotions = self
            .hotness
            .demotions(&classes, hot_capacity, pm.cold_age_threshold);
        demotions.truncate(((pm.migrate_threshold * 24.0) as usize).max(2));
        for page in demotions {
            if self.page_table.tier_of(page) == Some(Tier::Local) {
                // Send it to the least-loaded device.
                let dev = self.least_loaded_device();
                let _ = self.page_table.move_page(page, Tier::Cxl(dev));
            }
        }

        // 3. Embedding spreading across devices, budgeted by the migrate
        // threshold (larger threshold ⇒ more pages eligible to move).
        // Spreading runs periodically — device-level imbalance drifts
        // slowly, and rebalancing every epoch would re-chase sampling
        // noise.
        self.pm_epoch += 1;
        if self.pm_epoch % 4 != 0 {
            // Epoch bookkeeping still advances below.
            for m in &mut self.epoch_dev_pages {
                m.clear();
            }
            for h in 0..self.hotness.n_hosts() {
                self.hotness.host_mut(h).decay();
            }
            let migrated = self.page_table.migrations() - migrations_before;
            self.metrics.migrations += migrated;
            let _ = promoted;
            let concurrent = migrated * 2;
            return cost.total_overhead(migrated, concurrent);
        }
        let active_pages: usize = self.epoch_dev_pages.iter().map(|m| m.len()).sum();
        // Budget scales with the observed imbalance: balanced traffic
        // gets a trickle, a Fig 10(b)-style hotspot gets aggressive
        // redistribution.
        let dev_totals: Vec<u64> = self
            .epoch_dev_pages
            .iter()
            .map(|m| m.values().sum::<u64>())
            .collect();
        let avg = (dev_totals.iter().sum::<u64>() as f64 / dev_totals.len().max(1) as f64).max(1.0);
        let imbalance = dev_totals.iter().copied().max().unwrap_or(0) as f64 / avg;
        let budget = ((active_pages as f64 * pm.migrate_threshold / 8.0).ceil() as usize)
            .clamp(1, ((pm.migrate_threshold * 192.0 * imbalance) as usize).max(8));
        let mut loads: Vec<DeviceLoad> = self
            .epoch_dev_pages
            .iter()
            .enumerate()
            .map(|(d, pages)| DeviceLoad {
                pages: pages
                    .iter()
                    .filter(|(p, _)| self.page_table.tier_of(**p) == Some(Tier::Cxl(d as u16)))
                    .map(|(&p, &c)| (p, c))
                    .collect(),
                capacity: self.page_table.capacities().cxl_pages_per_dev,
            })
            .collect();
        let moves = pagemgmt::rebalance(
            &mut loads,
            &SpreadConfig {
                migrate_threshold: 0.35,
                max_rounds: budget,
            },
        );
        for m in &moves {
            let _ = self.page_table.move_page(m.page, Tier::Cxl(m.to));
        }

        // Epoch cleanup.
        for m in &mut self.epoch_dev_pages {
            m.clear();
        }
        for h in 0..self.hotness.n_hosts() {
            self.hotness.host_mut(h).decay();
        }

        let migrated = self.page_table.migrations() - migrations_before;
        self.metrics.migrations += migrated;
        let _ = promoted;
        // In-flight lookups colliding with migrating pages: a couple per
        // moved page at DLRM arrival rates.
        let concurrent = migrated * 2;
        cost.total_overhead(migrated, concurrent)
    }

    /// TPP-like epoch: promote every page re-referenced this epoch
    /// (heat ≥ 2), evicting the least-recently-promoted page when local
    /// DRAM is full. No spreading, no global coordination.
    fn run_tpp_epoch(
        &mut self,
        cost: &MigrationCostModel,
        migrations_before: u64,
    ) -> SimDuration {
        let mut candidates: Vec<(u64, PageId)> = Vec::new();
        for h in 0..self.hotness.n_hosts() {
            for (page, heat) in self.hotness.host(h).iter() {
                if heat >= 2 && self.page_table.tier_of(page) != Some(Tier::Local) {
                    candidates.push((heat, page));
                }
            }
        }
        candidates.sort_unstable_by(|a, b| b.cmp(a));
        candidates.truncate(64);
        // Demotion victims: current locals, coldest first.
        let mut locals: Vec<(u64, PageId)> = self
            .page_table
            .iter()
            .filter(|&(_, t)| t == Tier::Local)
            .map(|(p, _)| (self.hotness_count(0, p), p))
            .collect();
        locals.sort_unstable();
        let mut victim_cursor = 0usize;
        for (_, page) in candidates {
            if self.page_table.move_page(page, Tier::Local).is_ok() {
                continue;
            }
            if victim_cursor >= locals.len() {
                break;
            }
            let (_, victim) = locals[victim_cursor];
            victim_cursor += 1;
            self.page_table.swap(page, victim);
        }
        for m in &mut self.epoch_dev_pages {
            m.clear();
        }
        for h in 0..self.hotness.n_hosts() {
            self.hotness.host_mut(h).decay();
        }
        let migrated = self.page_table.migrations() - migrations_before;
        self.metrics.migrations += migrated;
        cost.total_overhead(migrated, migrated * 2)
    }

    /// Global (cross-host) heat of `page`.
    fn hotness_count(&self, _host_idx: usize, page: PageId) -> u64 {
        (0..self.hotness.n_hosts())
            .map(|h| self.hotness.host(h).count(page))
            .sum()
    }

    fn least_loaded_device(&self) -> u16 {
        self.devices
            .iter()
            .enumerate()
            .min_by_key(|&(_, d)| d.access_count())
            .map(|(i, _)| i as u16)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracegen::{Distribution, TraceSpec};

    fn small_model() -> ModelConfig {
        ModelConfig {
            emb_num: 4096,
            ..ModelConfig::rmc1()
        }
    }

    fn trace_for(model: &ModelConfig, batches: u32, batch: u32, seed: u64) -> Trace {
        TraceSpec {
            distribution: Distribution::MetaLike { reuse_frac: 0.35, s: 1.05 },
            n_tables: model.n_tables,
            rows_per_table: model.emb_num,
            batch_size: batch,
            n_batches: batches,
            bag_size: model.bag_size,
            seed,
        }
        .generate()
    }

    fn run(cfg: SystemConfig, seed: u64) -> RunMetrics {
        run_batches(cfg, seed, 6)
    }

    fn run_batches(cfg: SystemConfig, seed: u64, batches: u32) -> RunMetrics {
        let trace = trace_for(&cfg.model.clone(), batches, 16, seed);
        SlsSystem::new(cfg).run_trace(&trace)
    }

    fn assert_close(a: f64, b: f64) {
        let tol = (a.abs() + b.abs()) * 1e-5 + 1e-6;
        assert!((a - b).abs() <= tol, "checksums differ: {a} vs {b}");
    }

    #[test]
    fn every_lookup_is_accounted_for() {
        let m = run_batches(SystemConfig::pifs_rec(small_model()), 3, 2);
        assert_eq!(
            m.lookups,
            m.local_lookups + m.remote_lookups + m.cxl_lookups
        );
        assert_eq!(m.bags, 2 * 16 * 8);
        assert_eq!(m.lookups, m.bags * 8);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(SystemConfig::pifs_rec(small_model()), 3);
        let b = run(SystemConfig::pifs_rec(small_model()), 3);
        assert_eq!(a.total_ns, b.total_ns);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.device_accesses, b.device_accesses);
    }

    #[test]
    fn checksum_is_placement_independent() {
        // The functional SLS result must not depend on where rows live or
        // where accumulation happens (up to FP32 reassociation; the
        // per-bag fold order here is identical, so it is exact).
        let pond = run(SystemConfig::pond(small_model()), 7);
        let beacon = run(SystemConfig::beacon(small_model()), 7);
        let pifs = run(SystemConfig::pifs_rec(small_model()), 7);
        let recnmp = run(SystemConfig::recnmp(small_model(), 0.5), 7);
        assert_close(pond.checksum, beacon.checksum);
        assert_close(pond.checksum, pifs.checksum);
        assert_close(pond.checksum, recnmp.checksum);
    }

    #[test]
    fn pifs_beats_beacon_beats_pond() {
        let pond = run(SystemConfig::pond(small_model()), 5);
        let beacon = run(SystemConfig::beacon(small_model()), 5);
        let pifs = run(SystemConfig::pifs_rec(small_model()), 5);
        assert!(
            pifs.total_ns < beacon.total_ns,
            "pifs={} beacon={}",
            pifs.total_ns,
            beacon.total_ns
        );
        assert!(
            beacon.total_ns < pond.total_ns,
            "beacon={} pond={}",
            beacon.total_ns,
            pond.total_ns
        );
    }

    #[test]
    fn page_management_helps_pond() {
        let pond = run(SystemConfig::pond(small_model()), 9);
        let pond_pm = run(SystemConfig::pond_pm(small_model()), 9);
        assert!(
            pond_pm.total_ns < pond.total_ns,
            "pond_pm={} pond={}",
            pond_pm.total_ns,
            pond.total_ns
        );
        assert!(pond_pm.local_lookups > 0);
    }

    #[test]
    fn buffer_hits_occur_on_skewed_traffic() {
        let m = run(SystemConfig::pifs_rec(small_model()), 11);
        assert!(m.buffer_hits > 0, "HTR buffer should hit on a Meta-like trace");
        assert!(m.buffer_hit_ratio() > 0.05);
    }

    #[test]
    fn ooo_reduces_stalls_to_zero() {
        let mut cfg = SystemConfig::beacon(small_model());
        cfg.ooo = false;
        let in_order = run(cfg.clone(), 13);
        cfg.ooo = true;
        let ooo = run(cfg, 13);
        assert!(in_order.ooo_stalls > 0);
        assert_eq!(ooo.ooo_stalls, 0);
        assert!(ooo.total_ns <= in_order.total_ns);
    }

    #[test]
    fn multi_host_improves_makespan() {
        let mut cfg = SystemConfig::pifs_rec(small_model());
        cfg.n_hosts = 1;
        let trace = trace_for(&cfg.model.clone(), 4, 16, 17);
        let one = SlsSystem::new(cfg.clone()).run_trace(&trace);
        cfg.n_hosts = 4;
        let four = SlsSystem::new(cfg).run_trace(&trace);
        assert!(
            four.total_ns < one.total_ns,
            "four hosts {} vs one {}",
            four.total_ns,
            one.total_ns
        );
    }

    #[test]
    fn multi_switch_runs_and_stays_correct() {
        let mut cfg = SystemConfig::pifs_rec(small_model());
        cfg.n_switches = 4;
        cfg.n_devices = 8;
        let trace = trace_for(&cfg.model.clone(), 2, 8, 19);
        let multi = SlsSystem::new(cfg.clone()).run_trace(&trace);
        cfg.n_switches = 1;
        let single = SlsSystem::new(cfg).run_trace(&trace);
        assert_close(multi.checksum, single.checksum);
        assert!(multi.total_ns > 0);
    }

    #[test]
    fn device_accesses_cover_all_devices_under_spreading() {
        let m = run(SystemConfig::pifs_rec(small_model()), 23);
        assert_eq!(m.device_accesses.len(), 8);
        let active = m.device_accesses.iter().filter(|&&c| c > 0).count();
        assert!(active >= 6, "spreading should use most devices: {:?}", m.device_accesses);
    }

    #[test]
    fn migration_overhead_is_tracked_when_pm_enabled() {
        let pifs = run(SystemConfig::pifs_rec(small_model()), 29);
        assert!(pifs.migrations > 0, "PM should migrate on a skewed trace");
        assert!(pifs.migration_ns > 0);
        let pond = run(SystemConfig::pond(small_model()), 29);
        assert_eq!(pond.migrations, 0);
        assert_eq!(pond.migration_ns, 0);
    }

    #[test]
    fn app_bandwidth_is_positive_and_bounded() {
        let m = run(SystemConfig::pifs_rec(small_model()), 31);
        let bw = m.app_bandwidth_gbps(small_model().row_bytes());
        assert!(bw > 0.0);
        assert!(bw < 10_000.0, "bandwidth {bw} GB/s is implausible");
    }
}
