//! The full-system façade: hosts, fabric switches, CXL devices, tiered
//! pages, and the DLRM SLS workload running across them.
//!
//! [`SlsSystem`] composes the [`crate::engine`] layers —
//! [`config`](crate::engine::config), [`topology`](crate::engine::topology),
//! [`pipeline`],
//! [`pagemgmt_epoch`](crate::engine::pagemgmt_epoch) and
//! [`metrics`](crate::engine::metrics) — and executes a
//! [`tracegen::Trace`], producing the latency/bandwidth/occupancy metrics
//! each figure harness reports. One configuration type covers every
//! scheme in the paper's evaluation:
//!
//! | Scheme | compute | placement | buffer | OoO | page mgmt |
//! |---|---|---|---|---|---|
//! | Pond | Host | all-CXL | — | — | — |
//! | Pond+PM | Host | managed | — | — | yes |
//! | BEACON-S | Switch | all-CXL | — | in-order | — |
//! | RecNMP | Dimm | local+spill | DIMM cache | — | — |
//! | PIFS-Rec | Switch | managed | HTR | OoO | yes |

use dlrm::{query, EmbeddingTable};
use pagemgmt::{GlobalHotness, PageId, PageTable, TierCapacities};
use simkit::{SimDuration, SimTime};
use tracegen::{QueryStream, Trace};

use crate::engine::config::page_align;
use crate::engine::metrics::CounterOffsets;
use crate::engine::pagemgmt_epoch::{run_pm_epoch, EpochCtx};
use crate::engine::pipeline::{self, process_bag, EngineCtx, EngineScratch};
use crate::engine::serving::{LatencyWindows, OpenLoopSession, QueryBatcher, ReadyBatch};
use crate::engine::topology::Plant;

pub use crate::engine::config::{BufferConfig, ComputeSite, PmConfig, PmStyle, SystemConfig};
pub use crate::engine::controller::{ControllerPolicy, ServingController};
pub use crate::engine::metrics::RunMetrics;
pub use crate::engine::serving::{
    OpenLoopOpts, PendingQuery, QueryBags, ServingConfig, ServingMetrics, ShedPolicy,
    TenantServing, WindowSummary,
};

/// One materialized trace query viewed through [`QueryBags`]: query
/// `qid`'s bag in `table` is sample `qid % batch_size` of trace batch
/// `qid / batch_size` — exactly [`SlsSystem::run_open_loop`]'s mapping.
struct TraceQueryBags<'a> {
    trace: &'a Trace,
    qid: u64,
}

impl QueryBags for TraceQueryBags<'_> {
    fn bag(&self, table: u32) -> &[u64] {
        let b = (self.qid / self.trace.batch_size as u64) as usize;
        let s = (self.qid % self.trace.batch_size as u64) as u32;
        self.trace.bag(b, table, s)
    }
}

/// The composed system: the hardware `Plant`, the embedding layout and
/// page placement, and the workload-visible run state.
///
/// `Clone` deep-copies the entire simulation — plant timing state, page
/// placement, hotness, metrics, scratch, and any in-progress open-loop
/// session — which is what a
/// [`SimCheckpoint`](crate::engine::checkpoint::SimCheckpoint)
/// captures.
#[derive(Clone)]
pub struct SlsSystem {
    cfg: SystemConfig,
    plant: Plant,
    page_table: PageTable,
    tables: Vec<EmbeddingTable>,
    hotness: GlobalHotness,
    next_cluster: u64,
    pm_epoch: u64,
    metrics: RunMetrics,
    /// Per-device page-access counts within the current PM epoch.
    epoch_dev_pages: Vec<simkit::hash::FastMap<PageId, u64>>,
    /// The unified scratch bundle: per-bag pipeline buffers plus the
    /// open-loop dispatcher's per-run buffers (allocation-free steady
    /// state for both run modes).
    scratch: EngineScratch,
    /// The in-progress streaming open-loop session, between
    /// [`Self::open_loop_begin`] and [`Self::open_loop_finish`].
    session: Option<OpenLoopSession>,
    /// Service slow-down windows `(start_ns, end_ns, mult)` from an
    /// externally supplied fault schedule (see
    /// [`simkit::faults::FaultSchedule::slow_intervals`]): a batch
    /// whose dispatch starts inside a window has its service span
    /// dilated by the window's multiplier. Empty (the default) keeps
    /// the dispatch path byte-identical to a fault-free build. Plain
    /// data, so checkpoints carry the fault state automatically.
    slowdowns: Vec<(u64, u64, f64)>,
}

impl SlsSystem {
    /// Builds an idle system from `cfg`, laying out the model's embedding
    /// tables and applying the initial placement.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no devices for a CXL
    /// placement, zero hosts, etc.).
    pub fn new(cfg: SystemConfig) -> Self {
        let plant = Plant::build(&cfg);

        // Embedding layout: page-aligned contiguous tables.
        let table_bytes = page_align(cfg.model.emb_num * cfg.model.row_bytes());
        let tables: Vec<EmbeddingTable> = (0..cfg.model.n_tables)
            .map(|t| {
                EmbeddingTable::new(
                    t,
                    cfg.model.emb_num,
                    cfg.model.emb_dim,
                    t as u64 * table_bytes,
                )
            })
            .collect();

        let n_pages = cfg.n_pages();
        let local_pages = ((n_pages as f64 * cfg.local_capacity_frac).ceil() as u64).max(1);
        let caps = TierCapacities::new(
            local_pages,
            n_pages, // the remote socket can always absorb the spill
            cfg.n_devices,
            // Generous per-device capacity: the balance constraint is
            // access load, not space.
            (n_pages / cfg.n_devices as u64 + 1) * 2,
        );
        let mut page_table = PageTable::new(caps);
        cfg.placement.apply(&mut page_table, n_pages);

        let n_hosts = cfg.n_hosts as usize;
        let n_devices = cfg.n_devices as usize;
        SlsSystem {
            cfg,
            plant,
            page_table,
            tables,
            hotness: GlobalHotness::new(n_hosts),
            next_cluster: 0,
            pm_epoch: 0,
            metrics: RunMetrics::default(),
            epoch_dev_pages: vec![simkit::hash::FastMap::default(); n_devices],
            scratch: EngineScratch::default(),
            session: None,
            slowdowns: Vec::new(),
        }
    }

    /// Installs the node's service slow-down windows (replacing any
    /// previous set): `(start_ns, end_ns, mult)` triples, typically
    /// [`simkit::faults::FaultSchedule::slow_intervals`]. A dispatched
    /// batch starting at `t` with some window `start <= t < end` has
    /// its end-to-end service span multiplied by the largest matching
    /// `mult` — completions and host occupancy stretch together, while
    /// device micro-timing stays on the base plane. An empty set (the
    /// default) leaves dispatch byte-identical to a build without this
    /// mechanism.
    pub fn set_slowdowns(&mut self, windows: Vec<(u64, u64, f64)>) {
        self.slowdowns = windows;
    }

    /// The configuration this system was built from.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Read access to the placement table (for tests and harnesses).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// The per-bag pipeline stages, in execution order (introspection
    /// for harnesses and diagnostics).
    pub fn pipeline_stages(&self) -> Vec<&'static str> {
        pipeline::stage_names()
    }

    /// Removes the process core from switch `idx` (CNV = 0), forcing the
    /// §IV-C2 fallback where the host-local switch accumulates on its
    /// behalf.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn disable_process_core(&mut self, idx: usize) {
        self.plant.switches[idx].sw.set_process_core(false);
    }

    /// Runs `trace` to completion and returns the metrics.
    ///
    /// # Panics
    ///
    /// Panics if the trace's table count or row space exceeds the model's.
    pub fn run_trace(&mut self, trace: &Trace) -> RunMetrics {
        assert!(
            trace.n_tables <= self.cfg.model.n_tables,
            "trace has more tables than the model"
        );
        assert!(
            trace.rows_per_table <= self.cfg.model.emb_num,
            "trace rows exceed the model's embedding count"
        );

        self.metrics = RunMetrics::default();
        let mut bag_latency_sum = 0u128;
        let warmup = (self.cfg.warmup_batches as usize).min(trace.batches.len().saturating_sub(1));
        let mut measure_from: Vec<SimTime> = self.plant.hosts.iter().map(|h| h.next_free).collect();
        let mut dev_offset: Vec<u64> = vec![0; self.plant.devices.len()];
        let mut counter_offsets = CounterOffsets::default();
        if warmup == 0 {
            counter_offsets = self.snapshot_counters(&mut dev_offset);
        }

        let parts = query::partition(
            trace.n_tables,
            trace.batch_size,
            self.cfg.cores_per_host,
            self.cfg.threading,
        );

        for (bi, _batch) in trace.batches.iter().enumerate() {
            let host_idx = bi % self.cfg.n_hosts as usize;
            let batch_start = self.plant.hosts[host_idx].next_free;
            let mut batch_done = batch_start;

            for (core_idx, items) in parts.iter().enumerate() {
                self.plant.hosts[host_idx].cores[core_idx] = batch_start;
                for item in items {
                    for sample in item.sample_begin..item.sample_end {
                        let bag = trace.bag(bi, item.table, sample);
                        let issue = self.plant.hosts[host_idx].cores[core_idx];
                        let mut scratch = std::mem::take(&mut self.scratch.bag);
                        let (done, core_free) = process_bag(
                            &mut self.engine_ctx(),
                            &mut scratch,
                            host_idx,
                            issue,
                            item.table,
                            bag,
                        );
                        self.scratch.bag = scratch;
                        self.plant.hosts[host_idx].cores[core_idx] = core_free;
                        batch_done = batch_done.max(done);
                        bag_latency_sum += done.saturating_since(issue).as_ns() as u128;
                        self.metrics.bags += 1;
                    }
                }
            }

            // Page-management epoch at the batch boundary.
            if self.cfg.page_mgmt.is_some() {
                let overhead = run_pm_epoch(&mut self.epoch_ctx());
                batch_done += overhead;
                self.metrics.migration_ns += overhead.as_ns();
            }
            self.plant.hosts[host_idx].next_free = batch_done;

            if bi + 1 == warmup {
                // Steady state reached: reset every measured quantity.
                self.metrics = RunMetrics::default();
                bag_latency_sum = 0;
                measure_from = self.plant.hosts.iter().map(|h| h.next_free).collect();
                counter_offsets = self.snapshot_counters(&mut dev_offset);
            }
        }

        self.metrics.total_ns = self
            .plant
            .hosts
            .iter()
            .zip(&measure_from)
            .map(|(h, &from)| h.next_free.saturating_since(from).as_ns())
            .max()
            .unwrap_or(0);
        self.metrics.device_accesses = self
            .plant
            .devices
            .iter()
            .zip(&dev_offset)
            .map(|(d, &off)| d.access_count() - off)
            .collect();
        counter_offsets.finish(&self.plant.switches, &self.plant.hosts, &mut self.metrics);
        self.metrics.mean_bag_ns = if self.metrics.bags == 0 {
            0.0
        } else {
            bag_latency_sum as f64 / self.metrics.bags as f64
        };
        self.metrics.clone()
    }

    /// Serves `trace`'s samples open-loop: query `q` (the `q`-th entry
    /// of `arrivals`) is sample `q % batch_size` of trace batch
    /// `q / batch_size`, enqueued at `arrivals[q]` — timestamps are
    /// relative to the run's start (on a warm system the stream is
    /// shifted past everything already simulated). The configured
    /// [`ServingConfig`] batcher closes dynamic batches (fill or
    /// max-wait), each dispatched to the stage pipeline when its host
    /// frees up, and per-query enqueue→completion latency streams into
    /// [`ServingMetrics::latency`].
    ///
    /// Warmup is an arrival-stream concern here (closed-loop
    /// `warmup_batches` does not apply): the whole run is measured.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals` is not sorted non-decreasing, if it holds
    /// more queries than the trace has samples, or if the trace exceeds
    /// the model (as in [`Self::run_trace`]).
    pub fn run_open_loop(&mut self, trace: &Trace, arrivals: &[SimTime]) -> ServingMetrics {
        assert!(
            trace.n_tables <= self.cfg.model.n_tables,
            "trace has more tables than the model"
        );
        assert!(
            trace.rows_per_table <= self.cfg.model.emb_num,
            "trace rows exceed the model's embedding count"
        );
        let capacity = trace.batches.len() as u64 * trace.batch_size as u64;
        assert!(
            arrivals.len() as u64 <= capacity,
            "arrival stream has more queries than the trace has samples"
        );
        assert!(
            arrivals.windows(2).all(|w| w[0] <= w[1]),
            "arrival timestamps must be sorted non-decreasing"
        );

        // The materialized path is a thin client of the streaming
        // session: push every (arrival, bags) pair in timestamp order
        // and finish. Batch formation depends only on the timestamps
        // and the batcher knobs, and dispatch consumes batches in
        // formation order with a time base fixed at `begin`, so
        // interleaving them is observably identical to the original
        // two-phase (form-all-then-dispatch-all) implementation.
        self.open_loop_begin(trace.n_tables, OpenLoopOpts::default());
        for (qid, &t) in arrivals.iter().enumerate() {
            self.open_loop_push(
                t,
                &TraceQueryBags {
                    trace,
                    qid: qid as u64,
                },
            );
        }
        self.open_loop_finish()
    }

    /// Opens a streaming open-loop session: the push-based form of
    /// [`Self::run_open_loop`] for workloads that never materialize.
    /// Queries enter one at a time via [`Self::open_loop_push`] (each
    /// carrying `n_tables` bags) and the session dispatches batches as
    /// the batcher closes them, holding at most one batch of pending
    /// bags — memory is bounded regardless of stream length.
    /// [`Self::open_loop_finish`] drains and returns the metrics.
    ///
    /// # Panics
    ///
    /// Panics if a session is already active or if `n_tables` exceeds
    /// the model's table count.
    pub fn open_loop_begin(&mut self, n_tables: u32, opts: OpenLoopOpts) {
        assert!(
            self.session.is_none(),
            "an open-loop session is already active"
        );
        assert!(
            n_tables <= self.cfg.model.n_tables,
            "stream has more tables than the model"
        );
        self.metrics = RunMetrics::default();
        // The partition memo is layout-dependent (it bakes in the
        // session's table count), so it resets every session; its
        // buffers keep their capacity.
        self.scratch.serving.parts_memo = None;
        let mut dev_offset: Vec<u64> = vec![0; self.plant.devices.len()];
        let counter_offsets = self.snapshot_counters(&mut dev_offset);
        // Arrival timestamps are relative to the run start: on a warm
        // system (a prior run advanced the hosts) the whole stream is
        // shifted past everything already simulated, so latencies and
        // the makespan measure this run only.
        let t0 = self
            .plant
            .hosts
            .iter()
            .map(|h| h.next_free)
            .max()
            .unwrap_or(SimTime::ZERO);
        self.session = Some(OpenLoopSession {
            batcher: QueryBatcher::new(&self.cfg.serving),
            controller: crate::engine::controller::ServingController::new(&self.cfg.serving),
            serving: ServingMetrics::default(),
            bag_latency_sum: 0,
            dev_offset,
            counter_offsets,
            t0,
            shift: t0.saturating_since(SimTime::ZERO),
            batches_dispatched: 0,
            record_completion: opts.record_completion,
            n_tables,
            rows: Vec::new(),
            offsets: vec![0],
            windows: opts
                .window_ns
                .map(|w| LatencyWindows::new(w, self.cfg.serving.max_wait_ns)),
            next_qid: 0,
            last_arrival: SimTime::ZERO,
            shed_completions: std::collections::VecDeque::new(),
            tenants: Vec::new(),
        });
    }

    /// Pushes one query into the active session: `bags` supplies its
    /// row bag for each of the session's tables, copied into the
    /// session's recycled pending store (so the source buffers are free
    /// to be reused immediately). Returns the query's id — sequential
    /// from 0 in push order. Any batch the batcher closes (the oldest
    /// pending query timing out at or before `arrival`, or this arrival
    /// filling the batch) dispatches inline.
    ///
    /// # Panics
    ///
    /// Panics if no session is active; debug-asserts that arrivals are
    /// non-decreasing.
    pub fn open_loop_push(&mut self, arrival: SimTime, bags: &(impl QueryBags + ?Sized)) -> u64 {
        self.open_loop_push_tagged(arrival, 0, bags)
    }

    /// [`Self::open_loop_push`] with an explicit tenant tag: the query's
    /// served/shed counts and latency land in
    /// [`ServingMetrics::per_tenant`]`[tenant]` as well as the whole-run
    /// aggregates. Untagged pushes are tenant 0, so the two entry points
    /// mix freely.
    ///
    /// # Panics
    ///
    /// As [`Self::open_loop_push`].
    pub fn open_loop_push_tagged(
        &mut self,
        arrival: SimTime,
        tenant: u16,
        bags: &(impl QueryBags + ?Sized),
    ) -> u64 {
        let mut s = self
            .session
            .take()
            .expect("open_loop_push requires an active session (open_loop_begin)");
        debug_assert!(
            arrival >= s.last_arrival,
            "arrival timestamps must be non-decreasing"
        );
        s.last_arrival = arrival;
        // The batcher contract: timeouts due at or before this arrival
        // fire first, then the arrival is admitted (possibly closing a
        // full batch). The pending store always holds exactly the
        // batcher's pending queries, in FIFO order.
        while let Some(b) = s.batcher.flush_due(arrival) {
            self.dispatch_batch(&mut s, &b);
        }
        let qid = s.next_qid;
        s.next_qid += 1;
        // SLA-aware admission control: a shed arrival consumes its qid
        // (downstream merges index by qid) but is never queued — no
        // bags copied, no latency recorded. Its completion slot, when
        // recorded, is the arrival instant itself (zero service),
        // spliced into qid order as neighbouring batches retire.
        if self.should_shed(&s, arrival) {
            s.serving.shed += 1;
            s.serving.tenant_mut(tenant).shed += 1;
            s.serving.shed_qids.push(qid);
            if s.record_completion {
                s.shed_completions
                    .push_back((qid, SimTime::from_ns(arrival.as_ns())));
            }
            self.session = Some(s);
            return qid;
        }
        for t in 0..s.n_tables {
            s.rows.extend_from_slice(bags.bag(t));
            s.offsets.push(s.rows.len());
        }
        s.tenants.push(tenant);
        if let Some(b) = s.batcher.offer(qid, arrival) {
            self.dispatch_batch(&mut s, &b);
        }
        self.session = Some(s);
        qid
    }

    /// Whether the active shed policy drops an arrival at `arrival`
    /// given the current queue and host state.
    fn should_shed(&self, s: &OpenLoopSession, arrival: SimTime) -> bool {
        match self.cfg.serving.shed {
            ShedPolicy::None => false,
            ShedPolicy::QueueDepth { max_pending } => s.batcher.len() >= max_pending as usize,
            ShedPolicy::Deadline => {
                // Even the least-loaded host cannot start service
                // before the arrival's deadline: the answer would be
                // late no matter what, so drop it at the door.
                let soonest = self
                    .plant
                    .hosts
                    .iter()
                    .map(|h| h.next_free)
                    .min()
                    .unwrap_or(SimTime::ZERO);
                soonest.saturating_since(arrival + s.shift).as_ns() > self.cfg.serving.sla_ns
            }
        }
    }

    /// Closes the active session: trailing queries flush at their
    /// max-wait deadline (exactly as they would had more traffic
    /// followed), the last windows finalize, and the run's
    /// [`ServingMetrics`] are returned.
    ///
    /// # Panics
    ///
    /// Panics if no session is active.
    pub fn open_loop_finish(&mut self) -> ServingMetrics {
        let mut s = self
            .session
            .take()
            .expect("open_loop_finish requires an active session (open_loop_begin)");
        while let Some(b) = s.batcher.flush_due(SimTime::from_ns(u64::MAX)) {
            self.dispatch_batch(&mut s, &b);
        }
        // Trailing shed queries (nothing after them ever dispatched).
        while let Some((shed_qid, at)) = s.shed_completions.pop_front() {
            debug_assert_eq!(s.serving.completion.len() as u64, shed_qid);
            s.serving.completion.push(at);
        }
        let mut serving = s.serving;
        serving.batches = s.batches_dispatched;
        serving.pm_epochs = s.controller.epochs_run();
        serving.mean_batch_fill = if s.batches_dispatched == 0 {
            0.0
        } else {
            serving.mean_batch_fill
                / (s.batches_dispatched as f64 * self.cfg.serving.batch_size as f64)
        };
        if let Some(w) = s.windows {
            serving.windows = w.finish();
        }
        serving.makespan_ns = self
            .plant
            .hosts
            .iter()
            .map(|h| h.next_free.saturating_since(s.t0).as_ns())
            .max()
            .unwrap_or(0);
        self.metrics.total_ns = serving.makespan_ns;
        self.metrics.device_accesses = self
            .plant
            .devices
            .iter()
            .zip(&s.dev_offset)
            .map(|(d, &off)| d.access_count() - off)
            .collect();
        s.counter_offsets
            .finish(&self.plant.switches, &self.plant.hosts, &mut self.metrics);
        self.metrics.mean_bag_ns = if self.metrics.bags == 0 {
            0.0
        } else {
            s.bag_latency_sum as f64 / self.metrics.bags as f64
        };
        serving.run = self.metrics.clone();
        serving
    }

    /// Serves a lazy [`QueryStream`] end to end: the streaming
    /// equivalent of [`Self::run_open_loop`] on the stream's
    /// materialized trace and arrival vector, byte-identical in every
    /// metric, with memory bounded by one batch of pending bags instead
    /// of the whole trace.
    ///
    /// # Panics
    ///
    /// Panics as [`Self::open_loop_begin`] does, or if the stream's row
    /// space exceeds the model's.
    pub fn run_open_loop_stream(
        &mut self,
        stream: &mut QueryStream,
        opts: OpenLoopOpts,
    ) -> ServingMetrics {
        assert!(
            stream.spec().trace.rows_per_table <= self.cfg.model.emb_num,
            "stream rows exceed the model's embedding count"
        );
        self.open_loop_begin(stream.n_tables(), opts);
        while let Some((_, at)) = stream.next_query() {
            self.open_loop_push(at, &*stream);
        }
        self.open_loop_finish()
    }

    /// Serves a multi-tenant [`tracegen::TenantMixStream`] end to end:
    /// queries enter in the mix's global arrival order, each tagged with
    /// its tenant, so [`ServingMetrics::per_tenant`] splits the run by
    /// tenant while the aggregates cover the whole mix.
    ///
    /// # Panics
    ///
    /// Panics as [`Self::open_loop_begin`] does, or if any tenant's row
    /// space exceeds the model's.
    pub fn run_open_loop_mix(
        &mut self,
        mix: &mut tracegen::TenantMixStream,
        opts: OpenLoopOpts,
    ) -> ServingMetrics {
        for t in mix.specs() {
            assert!(
                t.stream.trace.rows_per_table <= self.cfg.model.emb_num,
                "tenant {:?} rows exceed the model's embedding count",
                t.name
            );
        }
        self.open_loop_begin(mix.n_tables(), opts);
        while let Some((_, tenant, at)) = mix.next_query() {
            self.open_loop_push_tagged(at, tenant, &*mix);
        }
        self.open_loop_finish()
    }

    /// Dispatches one closed batch to the stage pipeline — the body of
    /// `run_open_loop`'s original per-batch loop, fed from the
    /// session's pending store instead of a materialized trace.
    /// Batches run in close order, round-robin over hosts, each
    /// starting when both the batch has closed and its host is free;
    /// the pipeline timing path is exactly `run_trace`'s. The pending
    /// store is recycled (cleared, capacity kept) on return: the
    /// batcher drains *all* pending queries into every batch it closes,
    /// so the store and the batch always cover the same queries.
    fn dispatch_batch(&mut self, s: &mut OpenLoopSession, batch: &ReadyBatch) {
        let bi = s.batches_dispatched as usize;
        s.batches_dispatched += 1;
        let host_idx = bi % self.cfg.n_hosts as usize;
        let start = (batch.close + s.shift).max(self.plant.hosts[host_idx].next_free);
        let mut batch_done = start;
        let n = batch.queries.len() as u32;
        debug_assert_eq!(
            s.offsets.len(),
            n as usize * s.n_tables as usize + 1,
            "pending store must hold exactly the batch's queries"
        );
        let mut sv = std::mem::take(&mut self.scratch.serving);
        // Partition memo: every full batch shares one layout, so only
        // the trailing part-full sizes recompute it.
        if sv.parts_memo.as_ref().is_none_or(|(len, _)| *len != n) {
            sv.parts_memo = Some((
                n,
                query::partition(s.n_tables, n, self.cfg.cores_per_host, self.cfg.threading),
            ));
        }
        let parts = &sv.parts_memo.as_ref().expect("memo just filled").1;
        sv.q_done.clear();
        sv.q_done.resize(batch.queries.len(), start);
        for (core_idx, items) in parts.iter().enumerate() {
            self.plant.hosts[host_idx].cores[core_idx] = start;
            for item in items {
                for sample in item.sample_begin..item.sample_end {
                    let p = sample as usize * s.n_tables as usize + item.table as usize;
                    let bag = &s.rows[s.offsets[p]..s.offsets[p + 1]];
                    let issue = self.plant.hosts[host_idx].cores[core_idx];
                    let mut scratch = std::mem::take(&mut self.scratch.bag);
                    let (done, core_free) = process_bag(
                        &mut self.engine_ctx(),
                        &mut scratch,
                        host_idx,
                        issue,
                        item.table,
                        bag,
                    );
                    self.scratch.bag = scratch;
                    self.plant.hosts[host_idx].cores[core_idx] = core_free;
                    batch_done = batch_done.max(done);
                    sv.q_done[sample as usize] = sv.q_done[sample as usize].max(done);
                    s.bag_latency_sum += done.saturating_since(issue).as_ns() as u128;
                    self.metrics.bags += 1;
                }
            }
        }
        // A query completes when its last bag does; the response leaves
        // before the epoch-boundary page manager runs. Query ids are
        // push-sequential and batches dispatch in formation order, so
        // appending completions keeps `completion[qid]` indexing.
        // Service slow-down dilation: a batch starting inside a fault
        // window stretches end to end — every query completion and the
        // host's busy span — by the window's multiplier, so queueing
        // backs up behind the slow node exactly as it would in life.
        if !self.slowdowns.is_empty() {
            let t = start.as_ns();
            let mult = self
                .slowdowns
                .iter()
                .filter(|&&(a, b, _)| a <= t && t < b)
                .map(|&(_, _, m)| m)
                .fold(1.0f64, f64::max);
            if mult > 1.0 {
                let stretch = |done: SimTime| {
                    let span = done.saturating_since(start).as_ns();
                    start + SimDuration::from_ns((span as f64 * mult).round() as u64)
                };
                batch_done = stretch(batch_done);
                for done in sv.q_done.iter_mut() {
                    *done = stretch(*done);
                }
            }
        }
        for (i, (q, &done)) in batch.queries.iter().zip(&sv.q_done).enumerate() {
            let latency = done.saturating_since(q.arrival + s.shift);
            let wait = start.saturating_since(q.arrival + s.shift);
            s.serving.latency.record(latency);
            s.serving.wait.record(wait);
            s.controller.record_latency(latency);
            let slot = s.serving.tenant_mut(s.tenants[i]);
            slot.queries += 1;
            slot.latency.record(latency);
            slot.wait.record(wait);
            if s.record_completion {
                // Shed neighbours with smaller qids retire first: the
                // completion vector indexes by qid.
                while s
                    .shed_completions
                    .front()
                    .is_some_and(|&(shed_qid, _)| shed_qid < q.qid)
                {
                    let (shed_qid, at) = s.shed_completions.pop_front().expect("front checked");
                    debug_assert_eq!(s.serving.completion.len() as u64, shed_qid);
                    s.serving.completion.push(at);
                }
                debug_assert_eq!(s.serving.completion.len() as u64, q.qid);
                s.serving
                    .completion
                    .push(SimTime::from_ns(done.saturating_since(s.t0).as_ns()));
            }
            if let Some(w) = &mut s.windows {
                w.record(q.arrival, latency);
            }
        }
        s.serving.queries += batch.queries.len() as u64;
        s.serving.mean_batch_fill += batch.queries.len() as f64;
        if let Some(w) = &mut s.windows {
            w.on_batch_close(batch.close);
        }
        // Page-management epoch at the batch boundary, gated by the
        // controller: the fixed/load policies admit one at every
        // boundary (the historical cadence), the epoch-adaptive
        // policies stretch the cadence while the hot set is stable.
        if self.cfg.page_mgmt.is_some() && s.controller.epoch_due(&self.hotness) {
            let overhead = run_pm_epoch(&mut self.epoch_ctx());
            batch_done += overhead;
            self.metrics.migration_ns += overhead.as_ns();
        }
        self.plant.hosts[host_idx].next_free = batch_done;
        // Controller load tick: the dispatch backlog (close → service
        // start) is the open-loop queue-depth signal, the fill says
        // whether growing the batch could even absorb it.
        let backlog_ns = start.saturating_since(batch.close + s.shift).as_ns();
        if let Some((batch_size, max_wait_ns)) = s.controller.on_batch(n, backlog_ns) {
            s.batcher.set_knobs(batch_size, max_wait_ns);
        }
        s.rows.clear();
        s.offsets.clear();
        s.offsets.push(0);
        s.tenants.clear();
        self.scratch.serving = sv;
    }

    /// Records current cumulative counters so the measured window can
    /// subtract everything that happened before the capture point.
    fn snapshot_counters(&self, dev_offset: &mut [u64]) -> CounterOffsets {
        for (slot, d) in dev_offset.iter_mut().zip(&self.plant.devices) {
            *slot = d.access_count();
        }
        CounterOffsets::capture(&self.plant.switches, &self.plant.hosts)
    }

    /// A split-borrow view for the per-bag pipeline stages.
    fn engine_ctx(&mut self) -> EngineCtx<'_> {
        EngineCtx {
            cfg: &self.cfg,
            topo: &self.plant.topo,
            switches: &mut self.plant.switches,
            devices: &mut self.plant.devices,
            hosts: &mut self.plant.hosts,
            remote_link: &mut self.plant.remote_link,
            remote_dram: &mut self.plant.remote_dram,
            page_table: &self.page_table,
            tables: &self.tables,
            hotness: &mut self.hotness,
            epoch_dev_pages: &mut self.epoch_dev_pages,
            metrics: &mut self.metrics,
            next_cluster: &mut self.next_cluster,
        }
    }

    /// A split-borrow view for the epoch-boundary page manager.
    fn epoch_ctx(&mut self) -> EpochCtx<'_> {
        EpochCtx {
            cfg: &self.cfg,
            page_table: &mut self.page_table,
            hotness: &mut self.hotness,
            epoch_dev_pages: &mut self.epoch_dev_pages,
            devices: &self.plant.devices,
            metrics: &mut self.metrics,
            pm_epoch: &mut self.pm_epoch,
        }
    }
}
