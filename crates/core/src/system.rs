//! The full-system façade: hosts, fabric switches, CXL devices, tiered
//! pages, and the DLRM SLS workload running across them.
//!
//! [`SlsSystem`] composes the [`crate::engine`] layers —
//! [`config`](crate::engine::config), [`topology`](crate::engine::topology),
//! [`pipeline`],
//! [`pagemgmt_epoch`](crate::engine::pagemgmt_epoch) and
//! [`metrics`](crate::engine::metrics) — and executes a
//! [`tracegen::Trace`], producing the latency/bandwidth/occupancy metrics
//! each figure harness reports. One configuration type covers every
//! scheme in the paper's evaluation:
//!
//! | Scheme | compute | placement | buffer | OoO | page mgmt |
//! |---|---|---|---|---|---|
//! | Pond | Host | all-CXL | — | — | — |
//! | Pond+PM | Host | managed | — | — | yes |
//! | BEACON-S | Switch | all-CXL | — | in-order | — |
//! | RecNMP | Dimm | local+spill | DIMM cache | — | — |
//! | PIFS-Rec | Switch | managed | HTR | OoO | yes |

use dlrm::{query, EmbeddingTable};
use pagemgmt::{GlobalHotness, PageId, PageTable, TierCapacities};
use simkit::SimTime;
use tracegen::Trace;

use crate::engine::config::page_align;
use crate::engine::metrics::CounterOffsets;
use crate::engine::pagemgmt_epoch::{run_pm_epoch, EpochCtx};
use crate::engine::pipeline::{self, process_bag, EngineCtx, EngineScratch};
use crate::engine::serving::QueryBatcher;
use crate::engine::topology::Plant;

pub use crate::engine::config::{BufferConfig, ComputeSite, PmConfig, PmStyle, SystemConfig};
pub use crate::engine::metrics::RunMetrics;
pub use crate::engine::serving::{PendingQuery, ServingConfig, ServingMetrics};

/// The composed system: the hardware `Plant`, the embedding layout and
/// page placement, and the workload-visible run state.
pub struct SlsSystem {
    cfg: SystemConfig,
    plant: Plant,
    page_table: PageTable,
    tables: Vec<EmbeddingTable>,
    hotness: GlobalHotness,
    next_cluster: u64,
    pm_epoch: u64,
    metrics: RunMetrics,
    /// Per-device page-access counts within the current PM epoch.
    epoch_dev_pages: Vec<simkit::hash::FastMap<PageId, u64>>,
    /// The unified scratch bundle: per-bag pipeline buffers plus the
    /// open-loop dispatcher's per-run buffers (allocation-free steady
    /// state for both run modes).
    scratch: EngineScratch,
}

impl SlsSystem {
    /// Builds an idle system from `cfg`, laying out the model's embedding
    /// tables and applying the initial placement.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no devices for a CXL
    /// placement, zero hosts, etc.).
    pub fn new(cfg: SystemConfig) -> Self {
        let plant = Plant::build(&cfg);

        // Embedding layout: page-aligned contiguous tables.
        let table_bytes = page_align(cfg.model.emb_num * cfg.model.row_bytes());
        let tables: Vec<EmbeddingTable> = (0..cfg.model.n_tables)
            .map(|t| {
                EmbeddingTable::new(
                    t,
                    cfg.model.emb_num,
                    cfg.model.emb_dim,
                    t as u64 * table_bytes,
                )
            })
            .collect();

        let n_pages = cfg.n_pages();
        let local_pages = ((n_pages as f64 * cfg.local_capacity_frac).ceil() as u64).max(1);
        let caps = TierCapacities::new(
            local_pages,
            n_pages, // the remote socket can always absorb the spill
            cfg.n_devices,
            // Generous per-device capacity: the balance constraint is
            // access load, not space.
            (n_pages / cfg.n_devices as u64 + 1) * 2,
        );
        let mut page_table = PageTable::new(caps);
        cfg.placement.apply(&mut page_table, n_pages);

        let n_hosts = cfg.n_hosts as usize;
        let n_devices = cfg.n_devices as usize;
        SlsSystem {
            cfg,
            plant,
            page_table,
            tables,
            hotness: GlobalHotness::new(n_hosts),
            next_cluster: 0,
            pm_epoch: 0,
            metrics: RunMetrics::default(),
            epoch_dev_pages: vec![simkit::hash::FastMap::default(); n_devices],
            scratch: EngineScratch::default(),
        }
    }

    /// The configuration this system was built from.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Read access to the placement table (for tests and harnesses).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// The per-bag pipeline stages, in execution order (introspection
    /// for harnesses and diagnostics).
    pub fn pipeline_stages(&self) -> Vec<&'static str> {
        pipeline::stage_names()
    }

    /// Removes the process core from switch `idx` (CNV = 0), forcing the
    /// §IV-C2 fallback where the host-local switch accumulates on its
    /// behalf.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn disable_process_core(&mut self, idx: usize) {
        self.plant.switches[idx].sw.set_process_core(false);
    }

    /// Runs `trace` to completion and returns the metrics.
    ///
    /// # Panics
    ///
    /// Panics if the trace's table count or row space exceeds the model's.
    pub fn run_trace(&mut self, trace: &Trace) -> RunMetrics {
        assert!(
            trace.n_tables <= self.cfg.model.n_tables,
            "trace has more tables than the model"
        );
        assert!(
            trace.rows_per_table <= self.cfg.model.emb_num,
            "trace rows exceed the model's embedding count"
        );

        self.metrics = RunMetrics::default();
        let mut bag_latency_sum = 0u128;
        let warmup = (self.cfg.warmup_batches as usize).min(trace.batches.len().saturating_sub(1));
        let mut measure_from: Vec<SimTime> = self.plant.hosts.iter().map(|h| h.next_free).collect();
        let mut dev_offset: Vec<u64> = vec![0; self.plant.devices.len()];
        let mut counter_offsets = CounterOffsets::default();
        if warmup == 0 {
            counter_offsets = self.snapshot_counters(&mut dev_offset);
        }

        let parts = query::partition(
            trace.n_tables,
            trace.batch_size,
            self.cfg.cores_per_host,
            self.cfg.threading,
        );

        for (bi, _batch) in trace.batches.iter().enumerate() {
            let host_idx = bi % self.cfg.n_hosts as usize;
            let batch_start = self.plant.hosts[host_idx].next_free;
            let mut batch_done = batch_start;

            for (core_idx, items) in parts.iter().enumerate() {
                self.plant.hosts[host_idx].cores[core_idx] = batch_start;
                for item in items {
                    for sample in item.sample_begin..item.sample_end {
                        let bag = trace.bag(bi, item.table, sample);
                        let issue = self.plant.hosts[host_idx].cores[core_idx];
                        let mut scratch = std::mem::take(&mut self.scratch.bag);
                        let (done, core_free) = process_bag(
                            &mut self.engine_ctx(),
                            &mut scratch,
                            host_idx,
                            issue,
                            item.table,
                            bag,
                        );
                        self.scratch.bag = scratch;
                        self.plant.hosts[host_idx].cores[core_idx] = core_free;
                        batch_done = batch_done.max(done);
                        bag_latency_sum += done.saturating_since(issue).as_ns() as u128;
                        self.metrics.bags += 1;
                    }
                }
            }

            // Page-management epoch at the batch boundary.
            if self.cfg.page_mgmt.is_some() {
                let overhead = run_pm_epoch(&mut self.epoch_ctx());
                batch_done += overhead;
                self.metrics.migration_ns += overhead.as_ns();
            }
            self.plant.hosts[host_idx].next_free = batch_done;

            if bi + 1 == warmup {
                // Steady state reached: reset every measured quantity.
                self.metrics = RunMetrics::default();
                bag_latency_sum = 0;
                measure_from = self.plant.hosts.iter().map(|h| h.next_free).collect();
                counter_offsets = self.snapshot_counters(&mut dev_offset);
            }
        }

        self.metrics.total_ns = self
            .plant
            .hosts
            .iter()
            .zip(&measure_from)
            .map(|(h, &from)| h.next_free.saturating_since(from).as_ns())
            .max()
            .unwrap_or(0);
        self.metrics.device_accesses = self
            .plant
            .devices
            .iter()
            .zip(&dev_offset)
            .map(|(d, &off)| d.access_count() - off)
            .collect();
        counter_offsets.finish(&self.plant.switches, &self.plant.hosts, &mut self.metrics);
        self.metrics.mean_bag_ns = if self.metrics.bags == 0 {
            0.0
        } else {
            bag_latency_sum as f64 / self.metrics.bags as f64
        };
        self.metrics.clone()
    }

    /// Serves `trace`'s samples open-loop: query `q` (the `q`-th entry
    /// of `arrivals`) is sample `q % batch_size` of trace batch
    /// `q / batch_size`, enqueued at `arrivals[q]` — timestamps are
    /// relative to the run's start (on a warm system the stream is
    /// shifted past everything already simulated). The configured
    /// [`ServingConfig`] batcher closes dynamic batches (fill or
    /// max-wait), each dispatched to the stage pipeline when its host
    /// frees up, and per-query enqueue→completion latency streams into
    /// [`ServingMetrics::latency`].
    ///
    /// Warmup is an arrival-stream concern here (closed-loop
    /// `warmup_batches` does not apply): the whole run is measured.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals` is not sorted non-decreasing, if it holds
    /// more queries than the trace has samples, or if the trace exceeds
    /// the model (as in [`Self::run_trace`]).
    pub fn run_open_loop(&mut self, trace: &Trace, arrivals: &[SimTime]) -> ServingMetrics {
        assert!(
            trace.n_tables <= self.cfg.model.n_tables,
            "trace has more tables than the model"
        );
        assert!(
            trace.rows_per_table <= self.cfg.model.emb_num,
            "trace rows exceed the model's embedding count"
        );
        let capacity = trace.batches.len() as u64 * trace.batch_size as u64;
        assert!(
            arrivals.len() as u64 <= capacity,
            "arrival stream has more queries than the trace has samples"
        );
        assert!(
            arrivals.windows(2).all(|w| w[0] <= w[1]),
            "arrival timestamps must be sorted non-decreasing"
        );

        // Phase 1 — batch formation. Depends only on the timestamps and
        // the batcher knobs, never on engine state: the batcher's
        // max-wait timer fires even while every core is busy (that is
        // what makes the loop open).
        // Dispatch buffers come from the unified scratch bundle, so a
        // warm system forms and runs batches without reallocating. The
        // partition memo is layout-dependent (it bakes in the trace's
        // table count), so it resets every run.
        let mut sv = std::mem::take(&mut self.scratch.serving);
        sv.formed.clear();
        sv.parts_memo = None;
        let mut batcher = QueryBatcher::new(&self.cfg.serving);
        for (qid, &t) in arrivals.iter().enumerate() {
            while let Some(b) = batcher.flush_due(t) {
                sv.formed.push(b);
            }
            if let Some(b) = batcher.offer(qid as u64, t) {
                sv.formed.push(b);
            }
        }
        while let Some(b) = batcher.flush_due(SimTime::from_ns(u64::MAX)) {
            sv.formed.push(b);
        }

        // Phase 2 — dispatch. Batches run in close order, round-robin
        // over hosts, each starting when both the batch has closed and
        // its host is free; the pipeline timing path is exactly
        // `run_trace`'s. Arrival timestamps are relative to the run
        // start: on a warm system (a prior run advanced the hosts) the
        // whole stream is shifted past everything already simulated, so
        // latencies and the makespan measure this run only.
        self.metrics = RunMetrics::default();
        let mut serving = ServingMetrics::default();
        serving.completion.resize(arrivals.len(), SimTime::ZERO);
        let mut bag_latency_sum = 0u128;
        let mut dev_offset: Vec<u64> = vec![0; self.plant.devices.len()];
        let counter_offsets = self.snapshot_counters(&mut dev_offset);
        let t0 = self
            .plant
            .hosts
            .iter()
            .map(|h| h.next_free)
            .max()
            .unwrap_or(SimTime::ZERO);
        let shift = t0.saturating_since(SimTime::ZERO);
        for (bi, batch) in sv.formed.iter().enumerate() {
            let host_idx = bi % self.cfg.n_hosts as usize;
            let start = (batch.close + shift).max(self.plant.hosts[host_idx].next_free);
            let mut batch_done = start;
            let n = batch.queries.len() as u32;
            // Partition memo: every full batch shares one layout, so
            // only the trailing part-full sizes recompute it.
            if sv.parts_memo.as_ref().is_none_or(|(len, _)| *len != n) {
                sv.parts_memo = Some((
                    n,
                    query::partition(
                        trace.n_tables,
                        n,
                        self.cfg.cores_per_host,
                        self.cfg.threading,
                    ),
                ));
            }
            let parts = &sv.parts_memo.as_ref().expect("memo just filled").1;
            sv.q_done.clear();
            sv.q_done.resize(batch.queries.len(), start);
            for (core_idx, items) in parts.iter().enumerate() {
                self.plant.hosts[host_idx].cores[core_idx] = start;
                for item in items {
                    for sample in item.sample_begin..item.sample_end {
                        let q = batch.queries[sample as usize];
                        let tb = (q.qid / trace.batch_size as u64) as usize;
                        let ts = (q.qid % trace.batch_size as u64) as u32;
                        let bag = trace.bag(tb, item.table, ts);
                        let issue = self.plant.hosts[host_idx].cores[core_idx];
                        let mut scratch = std::mem::take(&mut self.scratch.bag);
                        let (done, core_free) = process_bag(
                            &mut self.engine_ctx(),
                            &mut scratch,
                            host_idx,
                            issue,
                            item.table,
                            bag,
                        );
                        self.scratch.bag = scratch;
                        self.plant.hosts[host_idx].cores[core_idx] = core_free;
                        batch_done = batch_done.max(done);
                        sv.q_done[sample as usize] = sv.q_done[sample as usize].max(done);
                        bag_latency_sum += done.saturating_since(issue).as_ns() as u128;
                        self.metrics.bags += 1;
                    }
                }
            }
            // A query completes when its last bag does; the response
            // leaves before the epoch-boundary page manager runs.
            for (q, &done) in batch.queries.iter().zip(&sv.q_done) {
                serving
                    .latency
                    .record(done.saturating_since(q.arrival + shift));
                serving
                    .wait
                    .record(start.saturating_since(q.arrival + shift));
                serving.completion[q.qid as usize] =
                    SimTime::from_ns(done.saturating_since(t0).as_ns());
            }
            serving.queries += batch.queries.len() as u64;
            serving.mean_batch_fill += batch.queries.len() as f64;
            if self.cfg.page_mgmt.is_some() {
                let overhead = run_pm_epoch(&mut self.epoch_ctx());
                batch_done += overhead;
                self.metrics.migration_ns += overhead.as_ns();
            }
            self.plant.hosts[host_idx].next_free = batch_done;
        }

        serving.batches = sv.formed.len() as u64;
        serving.mean_batch_fill = if sv.formed.is_empty() {
            0.0
        } else {
            serving.mean_batch_fill / (sv.formed.len() as f64 * self.cfg.serving.batch_size as f64)
        };
        self.scratch.serving = sv;
        serving.makespan_ns = self
            .plant
            .hosts
            .iter()
            .map(|h| h.next_free.saturating_since(t0).as_ns())
            .max()
            .unwrap_or(0);
        self.metrics.total_ns = serving.makespan_ns;
        self.metrics.device_accesses = self
            .plant
            .devices
            .iter()
            .zip(&dev_offset)
            .map(|(d, &off)| d.access_count() - off)
            .collect();
        counter_offsets.finish(&self.plant.switches, &self.plant.hosts, &mut self.metrics);
        self.metrics.mean_bag_ns = if self.metrics.bags == 0 {
            0.0
        } else {
            bag_latency_sum as f64 / self.metrics.bags as f64
        };
        serving.run = self.metrics.clone();
        serving
    }

    /// Records current cumulative counters so the measured window can
    /// subtract everything that happened before the capture point.
    fn snapshot_counters(&self, dev_offset: &mut [u64]) -> CounterOffsets {
        for (slot, d) in dev_offset.iter_mut().zip(&self.plant.devices) {
            *slot = d.access_count();
        }
        CounterOffsets::capture(&self.plant.switches, &self.plant.hosts)
    }

    /// A split-borrow view for the per-bag pipeline stages.
    fn engine_ctx(&mut self) -> EngineCtx<'_> {
        EngineCtx {
            cfg: &self.cfg,
            topo: &self.plant.topo,
            switches: &mut self.plant.switches,
            devices: &mut self.plant.devices,
            hosts: &mut self.plant.hosts,
            remote_link: &mut self.plant.remote_link,
            remote_dram: &mut self.plant.remote_dram,
            page_table: &self.page_table,
            tables: &self.tables,
            hotness: &mut self.hotness,
            epoch_dev_pages: &mut self.epoch_dev_pages,
            metrics: &mut self.metrics,
            next_cluster: &mut self.next_cluster,
        }
    }

    /// A split-borrow view for the epoch-boundary page manager.
    fn epoch_ctx(&mut self) -> EpochCtx<'_> {
        EpochCtx {
            cfg: &self.cfg,
            page_table: &mut self.page_table,
            hotness: &mut self.hotness,
            epoch_dev_pages: &mut self.epoch_dev_pages,
            devices: &self.plant.devices,
            metrics: &mut self.metrics,
            pm_epoch: &mut self.pm_epoch,
        }
    }
}
