//! The full-system façade: hosts, fabric switches, CXL devices, tiered
//! pages, and the DLRM SLS workload running across them.
//!
//! [`SlsSystem`] composes the [`crate::engine`] layers —
//! [`config`](crate::engine::config), [`topology`](crate::engine::topology),
//! [`pipeline`],
//! [`pagemgmt_epoch`](crate::engine::pagemgmt_epoch) and
//! [`metrics`](crate::engine::metrics) — and executes a
//! [`tracegen::Trace`], producing the latency/bandwidth/occupancy metrics
//! each figure harness reports. One configuration type covers every
//! scheme in the paper's evaluation:
//!
//! | Scheme | compute | placement | buffer | OoO | page mgmt |
//! |---|---|---|---|---|---|
//! | Pond | Host | all-CXL | — | — | — |
//! | Pond+PM | Host | managed | — | — | yes |
//! | BEACON-S | Switch | all-CXL | — | in-order | — |
//! | RecNMP | Dimm | local+spill | DIMM cache | — | — |
//! | PIFS-Rec | Switch | managed | HTR | OoO | yes |

use dlrm::{query, EmbeddingTable};
use pagemgmt::{GlobalHotness, PageId, PageTable, TierCapacities};
use simkit::SimTime;
use tracegen::Trace;

use crate::engine::config::page_align;
use crate::engine::metrics::CounterOffsets;
use crate::engine::pagemgmt_epoch::{run_pm_epoch, EpochCtx};
use crate::engine::pipeline::{self, process_bag, BagScratch, EngineCtx};
use crate::engine::topology::Plant;

pub use crate::engine::config::{BufferConfig, ComputeSite, PmConfig, PmStyle, SystemConfig};
pub use crate::engine::metrics::RunMetrics;

/// The composed system: the hardware `Plant`, the embedding layout and
/// page placement, and the workload-visible run state.
pub struct SlsSystem {
    cfg: SystemConfig,
    plant: Plant,
    page_table: PageTable,
    tables: Vec<EmbeddingTable>,
    hotness: GlobalHotness,
    next_cluster: u64,
    pm_epoch: u64,
    metrics: RunMetrics,
    /// Per-device page-access counts within the current PM epoch.
    epoch_dev_pages: Vec<simkit::hash::FastMap<PageId, u64>>,
    /// Reusable per-bag pipeline buffers (allocation-free steady state).
    scratch: BagScratch,
}

impl SlsSystem {
    /// Builds an idle system from `cfg`, laying out the model's embedding
    /// tables and applying the initial placement.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no devices for a CXL
    /// placement, zero hosts, etc.).
    pub fn new(cfg: SystemConfig) -> Self {
        let plant = Plant::build(&cfg);

        // Embedding layout: page-aligned contiguous tables.
        let table_bytes = page_align(cfg.model.emb_num * cfg.model.row_bytes());
        let tables: Vec<EmbeddingTable> = (0..cfg.model.n_tables)
            .map(|t| {
                EmbeddingTable::new(
                    t,
                    cfg.model.emb_num,
                    cfg.model.emb_dim,
                    t as u64 * table_bytes,
                )
            })
            .collect();

        let n_pages = cfg.n_pages();
        let local_pages = ((n_pages as f64 * cfg.local_capacity_frac).ceil() as u64).max(1);
        let caps = TierCapacities::new(
            local_pages,
            n_pages, // the remote socket can always absorb the spill
            cfg.n_devices,
            // Generous per-device capacity: the balance constraint is
            // access load, not space.
            (n_pages / cfg.n_devices as u64 + 1) * 2,
        );
        let mut page_table = PageTable::new(caps);
        cfg.placement.apply(&mut page_table, n_pages);

        let n_hosts = cfg.n_hosts as usize;
        let n_devices = cfg.n_devices as usize;
        SlsSystem {
            cfg,
            plant,
            page_table,
            tables,
            hotness: GlobalHotness::new(n_hosts),
            next_cluster: 0,
            pm_epoch: 0,
            metrics: RunMetrics::default(),
            epoch_dev_pages: vec![simkit::hash::FastMap::default(); n_devices],
            scratch: BagScratch::default(),
        }
    }

    /// The configuration this system was built from.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Read access to the placement table (for tests and harnesses).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// The per-bag pipeline stages, in execution order (introspection
    /// for harnesses and diagnostics).
    pub fn pipeline_stages(&self) -> Vec<&'static str> {
        pipeline::stage_names()
    }

    /// Removes the process core from switch `idx` (CNV = 0), forcing the
    /// §IV-C2 fallback where the host-local switch accumulates on its
    /// behalf.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn disable_process_core(&mut self, idx: usize) {
        self.plant.switches[idx].sw.set_process_core(false);
    }

    /// Runs `trace` to completion and returns the metrics.
    ///
    /// # Panics
    ///
    /// Panics if the trace's table count or row space exceeds the model's.
    pub fn run_trace(&mut self, trace: &Trace) -> RunMetrics {
        assert!(
            trace.n_tables <= self.cfg.model.n_tables,
            "trace has more tables than the model"
        );
        assert!(
            trace.rows_per_table <= self.cfg.model.emb_num,
            "trace rows exceed the model's embedding count"
        );

        self.metrics = RunMetrics::default();
        let mut bag_latency_sum = 0u128;
        let warmup = (self.cfg.warmup_batches as usize).min(trace.batches.len().saturating_sub(1));
        let mut measure_from: Vec<SimTime> = self.plant.hosts.iter().map(|h| h.next_free).collect();
        let mut dev_offset: Vec<u64> = vec![0; self.plant.devices.len()];
        let mut counter_offsets = CounterOffsets::default();
        if warmup == 0 {
            counter_offsets = self.snapshot_counters(&mut dev_offset);
        }

        let parts = query::partition(
            trace.n_tables,
            trace.batch_size,
            self.cfg.cores_per_host,
            self.cfg.threading,
        );

        for (bi, _batch) in trace.batches.iter().enumerate() {
            let host_idx = bi % self.cfg.n_hosts as usize;
            let batch_start = self.plant.hosts[host_idx].next_free;
            let mut batch_done = batch_start;

            for (core_idx, items) in parts.iter().enumerate() {
                self.plant.hosts[host_idx].cores[core_idx] = batch_start;
                for item in items {
                    for sample in item.sample_begin..item.sample_end {
                        let bag = trace.bag(bi, item.table, sample);
                        let issue = self.plant.hosts[host_idx].cores[core_idx];
                        let mut scratch = std::mem::take(&mut self.scratch);
                        let (done, core_free) = process_bag(
                            &mut self.engine_ctx(),
                            &mut scratch,
                            host_idx,
                            issue,
                            item.table,
                            bag,
                        );
                        self.scratch = scratch;
                        self.plant.hosts[host_idx].cores[core_idx] = core_free;
                        batch_done = batch_done.max(done);
                        bag_latency_sum += done.saturating_since(issue).as_ns() as u128;
                        self.metrics.bags += 1;
                    }
                }
            }

            // Page-management epoch at the batch boundary.
            if self.cfg.page_mgmt.is_some() {
                let overhead = run_pm_epoch(&mut self.epoch_ctx());
                batch_done += overhead;
                self.metrics.migration_ns += overhead.as_ns();
            }
            self.plant.hosts[host_idx].next_free = batch_done;

            if bi + 1 == warmup {
                // Steady state reached: reset every measured quantity.
                self.metrics = RunMetrics::default();
                bag_latency_sum = 0;
                measure_from = self.plant.hosts.iter().map(|h| h.next_free).collect();
                counter_offsets = self.snapshot_counters(&mut dev_offset);
            }
        }

        self.metrics.total_ns = self
            .plant
            .hosts
            .iter()
            .zip(&measure_from)
            .map(|(h, &from)| h.next_free.saturating_since(from).as_ns())
            .max()
            .unwrap_or(0);
        self.metrics.device_accesses = self
            .plant
            .devices
            .iter()
            .zip(&dev_offset)
            .map(|(d, &off)| d.access_count() - off)
            .collect();
        counter_offsets.finish(&self.plant.switches, &self.plant.hosts, &mut self.metrics);
        self.metrics.mean_bag_ns = if self.metrics.bags == 0 {
            0.0
        } else {
            bag_latency_sum as f64 / self.metrics.bags as f64
        };
        self.metrics.clone()
    }

    /// Records current cumulative counters so the measured window can
    /// subtract everything that happened during warmup.
    fn snapshot_counters(&self, dev_offset: &mut [u64]) -> CounterOffsets {
        for (slot, d) in dev_offset.iter_mut().zip(&self.plant.devices) {
            *slot = d.access_count();
        }
        CounterOffsets::capture(&self.plant.switches, &self.plant.hosts)
    }

    /// A split-borrow view for the per-bag pipeline stages.
    fn engine_ctx(&mut self) -> EngineCtx<'_> {
        EngineCtx {
            cfg: &self.cfg,
            topo: &self.plant.topo,
            switches: &mut self.plant.switches,
            devices: &mut self.plant.devices,
            hosts: &mut self.plant.hosts,
            remote_link: &mut self.plant.remote_link,
            remote_dram: &mut self.plant.remote_dram,
            page_table: &self.page_table,
            tables: &self.tables,
            hotness: &mut self.hotness,
            epoch_dev_pages: &mut self.epoch_dev_pages,
            metrics: &mut self.metrics,
            next_cluster: &mut self.next_cluster,
        }
    }

    /// A split-borrow view for the epoch-boundary page manager.
    fn epoch_ctx(&mut self) -> EpochCtx<'_> {
        EpochCtx {
            cfg: &self.cfg,
            page_table: &mut self.page_table,
            hotness: &mut self.hotness,
            epoch_dev_pages: &mut self.epoch_dev_pages,
            devices: &self.plant.devices,
            metrics: &mut self.metrics,
            pm_epoch: &mut self.pm_epoch,
        }
    }
}
