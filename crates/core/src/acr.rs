//! Accumulate Configuration Register and accumulate logic (§IV-A3).
//!
//! A `Configuration` instruction opens an *accumulation cluster*: it
//! carries the cluster's `sumtag`, its `SumCandidateCount` (how many row
//! vectors will arrive) and the host address reserved for the result.
//! Each arriving row decrements the counter; at zero the accumulated
//! vector ships back to the host over CXL.cache {D2H}. The ACR has
//! finite capacity — when `CapacityCounter` hits the limit the switch
//! back-pressures upstream modules.

use simkit::hash::FastMap;

/// Globally unique cluster identity. The 9-bit wire `sumtag` is an index
/// into the ACR; the simulation widens it so concurrently live clusters
/// from many hosts/batches stay distinct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterId(pub u64);

/// Backpressure: the ACR's `CapacityCounter` hit its limit, so a new
/// cluster cannot be configured until one completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcrFull;

impl std::fmt::Display for AcrFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ACR at capacity: no free accumulation cluster slot")
    }
}

impl std::error::Error for AcrFull {}

/// A finished accumulation ready to return to its host.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedCluster {
    /// The cluster.
    pub id: ClusterId,
    /// Host memory address reserved for the result.
    pub result_addr: u64,
    /// The accumulated vector (arrival-order FP32 folds, as the hardware
    /// adder would produce).
    pub acc: Vec<f32>,
}

#[derive(Debug, Clone)]
struct Cluster {
    result_addr: u64,
    remaining: u32,
    acc: Vec<f32>,
}

/// The ACR array plus accumulate logic.
///
/// # Examples
///
/// ```
/// use pifs_core::{AccumulateLogic, ClusterId};
///
/// let mut acr = AccumulateLogic::new(16);
/// acr.configure(ClusterId(1), 2, 0xF000, 4).unwrap();
/// assert!(acr.on_row(ClusterId(1), &[1.0, 0.0, 0.0, 0.0], 1.0).is_none());
/// let done = acr.on_row(ClusterId(1), &[0.5, 0.0, 0.0, 0.0], 1.0).unwrap();
/// assert_eq!(done.acc[0], 1.5);
/// assert_eq!(done.result_addr, 0xF000);
/// ```
#[derive(Debug, Clone)]
pub struct AccumulateLogic {
    clusters: FastMap<ClusterId, Cluster>,
    capacity: usize,
    backpressure_events: u64,
    completed: u64,
    high_water: usize,
}

impl AccumulateLogic {
    /// Creates accumulate logic with room for `capacity` concurrent
    /// clusters (the ACR's `Total Capacity`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ACR capacity must be positive");
        AccumulateLogic {
            clusters: FastMap::default(),
            capacity,
            backpressure_events: 0,
            completed: 0,
            high_water: 0,
        }
    }

    /// Opens a cluster expecting `candidates` rows of `dim` elements,
    /// with the result going to `result_addr`.
    ///
    /// Returns [`AcrFull`] (a backpressure event) when the ACR is full.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is zero, `dim` is zero, or the cluster id
    /// is already live.
    pub fn configure(
        &mut self,
        id: ClusterId,
        candidates: u32,
        result_addr: u64,
        dim: u32,
    ) -> Result<(), AcrFull> {
        assert!(candidates > 0, "a cluster must expect at least one row");
        assert!(dim > 0, "vector dimension must be positive");
        assert!(
            !self.clusters.contains_key(&id),
            "cluster {id:?} already configured"
        );
        if self.clusters.len() >= self.capacity {
            self.backpressure_events += 1;
            return Err(AcrFull);
        }
        self.clusters.insert(
            id,
            Cluster {
                result_addr,
                remaining: candidates,
                acc: vec![0.0; dim as usize],
            },
        );
        self.high_water = self.high_water.max(self.clusters.len());
        Ok(())
    }

    /// Folds one arriving row into its cluster; returns the completed
    /// cluster when its `SumCandidateCounter` reaches zero.
    ///
    /// # Panics
    ///
    /// Panics if the cluster is unknown or the row width mismatches.
    pub fn on_row(&mut self, id: ClusterId, row: &[f32], weight: f32) -> Option<CompletedCluster> {
        let cluster = self
            .clusters
            .get_mut(&id)
            .unwrap_or_else(|| panic!("row for unconfigured cluster {id:?}"));
        assert_eq!(
            cluster.acc.len(),
            row.len(),
            "row width must match the configured dimension"
        );
        for (a, &r) in cluster.acc.iter_mut().zip(row) {
            *a += weight * r;
        }
        cluster.remaining -= 1;
        if cluster.remaining == 0 {
            let c = self.clusters.remove(&id).expect("cluster present");
            self.completed += 1;
            Some(CompletedCluster {
                id,
                result_addr: c.result_addr,
                acc: c.acc,
            })
        } else {
            None
        }
    }

    /// Decrements a cluster's `SumCandidateCounter` by `n` without
    /// touching the accumulator — the bookkeeping-only drain the engine
    /// uses when the arithmetic already happened elsewhere (the forward
    /// controller's merge) and the ACR result would be discarded.
    /// Completion bookkeeping is identical to `n` [`Self::on_row`] calls
    /// with an all-zero row.
    ///
    /// # Panics
    ///
    /// Panics if the cluster is unknown or `n` exceeds the remaining
    /// candidate count.
    pub fn drain_rows(&mut self, id: ClusterId, n: u32) -> Option<CompletedCluster> {
        if n == 0 {
            return None;
        }
        let cluster = self
            .clusters
            .get_mut(&id)
            .unwrap_or_else(|| panic!("drain for unconfigured cluster {id:?}"));
        assert!(
            n <= cluster.remaining,
            "drain of {n} exceeds {} remaining candidates",
            cluster.remaining
        );
        cluster.remaining -= n;
        if cluster.remaining == 0 {
            let c = self.clusters.remove(&id).expect("cluster present");
            self.completed += 1;
            Some(CompletedCluster {
                id,
                result_addr: c.result_addr,
                acc: c.acc,
            })
        } else {
            None
        }
    }

    /// Grows a live cluster's expected-row count (used by the forward
    /// controller when sub-clusters report extra candidates).
    ///
    /// # Panics
    ///
    /// Panics if the cluster is unknown.
    pub fn add_candidates(&mut self, id: ClusterId, extra: u32) {
        self.clusters
            .get_mut(&id)
            .unwrap_or_else(|| panic!("unknown cluster {id:?}"))
            .remaining += extra;
    }

    /// Clusters currently live.
    pub fn live(&self) -> usize {
        self.clusters.len()
    }

    /// Total clusters completed.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Backpressure events (configure attempts refused at capacity).
    pub fn backpressure_events(&self) -> u64 {
        self.backpressure_events
    }

    /// Peak simultaneous clusters.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn completes_exactly_at_zero() {
        let mut acr = AccumulateLogic::new(4);
        acr.configure(ClusterId(1), 3, 0, 2).unwrap();
        assert!(acr.on_row(ClusterId(1), &[1.0, 1.0], 1.0).is_none());
        assert!(acr.on_row(ClusterId(1), &[1.0, 1.0], 1.0).is_none());
        let done = acr.on_row(ClusterId(1), &[1.0, 1.0], 1.0).unwrap();
        assert_eq!(done.acc, vec![3.0, 3.0]);
        assert_eq!(acr.live(), 0);
        assert_eq!(acr.completed(), 1);
    }

    #[test]
    fn weights_are_applied() {
        let mut acr = AccumulateLogic::new(4);
        acr.configure(ClusterId(9), 1, 0, 1).unwrap();
        let done = acr.on_row(ClusterId(9), &[2.0], 0.25).unwrap();
        assert_eq!(done.acc, vec![0.5]);
    }

    #[test]
    fn capacity_backpressures() {
        let mut acr = AccumulateLogic::new(2);
        acr.configure(ClusterId(1), 1, 0, 1).unwrap();
        acr.configure(ClusterId(2), 1, 0, 1).unwrap();
        assert!(acr.configure(ClusterId(3), 1, 0, 1).is_err());
        assert_eq!(acr.backpressure_events(), 1);
        // Completing one frees a slot.
        acr.on_row(ClusterId(1), &[0.0], 1.0).unwrap();
        assert!(acr.configure(ClusterId(3), 1, 0, 1).is_ok());
    }

    #[test]
    fn interleaved_clusters_stay_independent() {
        let mut acr = AccumulateLogic::new(4);
        acr.configure(ClusterId(1), 2, 0x10, 1).unwrap();
        acr.configure(ClusterId(2), 2, 0x20, 1).unwrap();
        assert!(acr.on_row(ClusterId(1), &[1.0], 1.0).is_none());
        assert!(acr.on_row(ClusterId(2), &[10.0], 1.0).is_none());
        let d2 = acr.on_row(ClusterId(2), &[10.0], 1.0).unwrap();
        let d1 = acr.on_row(ClusterId(1), &[1.0], 1.0).unwrap();
        assert_eq!(d1.acc, vec![2.0]);
        assert_eq!(d2.acc, vec![20.0]);
        assert_eq!(d1.result_addr, 0x10);
        assert_eq!(d2.result_addr, 0x20);
    }

    #[test]
    fn add_candidates_extends_a_live_cluster() {
        let mut acr = AccumulateLogic::new(4);
        acr.configure(ClusterId(1), 1, 0, 1).unwrap();
        acr.add_candidates(ClusterId(1), 1);
        assert!(acr.on_row(ClusterId(1), &[1.0], 1.0).is_none());
        assert!(acr.on_row(ClusterId(1), &[1.0], 1.0).is_some());
    }

    #[test]
    #[should_panic(expected = "unconfigured cluster")]
    fn rows_for_unknown_clusters_panic() {
        let mut acr = AccumulateLogic::new(4);
        let _ = acr.on_row(ClusterId(404), &[0.0], 1.0);
    }

    #[test]
    #[should_panic(expected = "already configured")]
    fn double_configure_panics() {
        let mut acr = AccumulateLogic::new(4);
        acr.configure(ClusterId(1), 1, 0, 1).unwrap();
        let _ = acr.configure(ClusterId(1), 1, 0, 1);
    }

    proptest! {
        /// The counter semantics: a cluster configured for n rows
        /// completes on exactly the n-th row, never earlier or later.
        #[test]
        fn prop_completion_exactly_on_nth_row(n in 1u32..64) {
            let mut acr = AccumulateLogic::new(4);
            acr.configure(ClusterId(0), n, 0, 1).unwrap();
            for i in 1..=n {
                let done = acr.on_row(ClusterId(0), &[1.0], 1.0);
                prop_assert_eq!(done.is_some(), i == n);
            }
            prop_assert_eq!(acr.live(), 0);
        }

        /// Arrival-order folding equals the sequential sum for pure adds.
        #[test]
        fn prop_sum_matches_sequential(values in proptest::collection::vec(-100.0f32..100.0, 1..32)) {
            let mut acr = AccumulateLogic::new(4);
            acr.configure(ClusterId(0), values.len() as u32, 0, 1).unwrap();
            let mut seq = 0.0f32;
            let mut done = None;
            for &v in &values {
                seq += v;
                done = acr.on_row(ClusterId(0), &[v], 1.0);
            }
            prop_assert_eq!(done.unwrap().acc[0], seq);
        }
    }
}
