//! MemOpcode checking and instruction repacking (§IV-A2).
//!
//! When a memory request reaches the fabric switch, the MemOpcode checker
//! inspects the instruction's `memOpcode` field: standard traffic
//! bypasses the process core and goes straight to the VCS for routing;
//! PIFS-enhanced opcodes (`DataFetch`, `Configuration`) are diverted into
//! the process core, which repacks row fetches into standard reads whose
//! SPID points at the switch so retrieved data lands in switch registers
//! instead of the host.

use cxlsim::{M2sReq, MemOpcode};

/// Where the MemOpcode checker routes an incoming instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrRoute {
    /// Standard CXL.mem traffic: bypass the PC, route via the VCS.
    BypassToVcs,
    /// PIFS-enhanced: handled by the process core.
    ProcessCore,
}

/// The MemOpcode checker ("Upon receiving a memory request from the
/// host, the memopcode checker examines the instruction's memory
/// operation field").
///
/// # Examples
///
/// ```
/// use cxlsim::M2sReq;
/// use pifs_core::{check_memopcode, InstrRoute};
///
/// let standard = M2sReq::mem_read(0x1000, 1);
/// assert_eq!(check_memopcode(&standard), InstrRoute::BypassToVcs);
/// let fetch = M2sReq::data_fetch(0x1000, 3, 4, 1);
/// assert_eq!(check_memopcode(&fetch), InstrRoute::ProcessCore);
/// ```
pub fn check_memopcode(req: &M2sReq) -> InstrRoute {
    if req.opcode.is_pifs_enhanced() {
        InstrRoute::ProcessCore
    } else {
        InstrRoute::BypassToVcs
    }
}

/// Repacks a `DataFetch` for issue to the end device: opcode becomes a
/// standard `MemRd`, the SPID becomes the switch's, and the DPID selects
/// the target device. The host "still acts as a monitor" — its original
/// tag and address are preserved so the IIR can match the return.
///
/// # Panics
///
/// Panics if called on a non-`DataFetch` instruction — the checker must
/// have routed standard traffic around the PC already.
pub fn repack(req: &M2sReq, switch_spid: u16, device_dpid: u16) -> M2sReq {
    assert_eq!(
        req.opcode,
        MemOpcode::DataFetch,
        "only DataFetch instructions are repacked"
    );
    req.repack_for_device(switch_spid, device_dpid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_traffic_bypasses_the_pc() {
        assert_eq!(
            check_memopcode(&M2sReq::mem_read(0, 9)),
            InstrRoute::BypassToVcs
        );
    }

    #[test]
    fn enhanced_traffic_routes_to_the_pc() {
        assert_eq!(
            check_memopcode(&M2sReq::data_fetch(0, 1, 1, 9)),
            InstrRoute::ProcessCore
        );
        assert_eq!(
            check_memopcode(&M2sReq::configuration(0, 1, 4, 9)),
            InstrRoute::ProcessCore
        );
    }

    #[test]
    fn repacked_fetch_is_a_standard_read_owned_by_the_switch() {
        let host_req = M2sReq::data_fetch(0xAB00, 7, 2, /*host*/ 3);
        let dev_req = repack(&host_req, /*switch*/ 100, /*device*/ 5);
        assert_eq!(dev_req.opcode, MemOpcode::MemRd);
        assert_eq!(dev_req.spid, 100);
        assert_eq!(dev_req.dpid, 5);
        assert_eq!(dev_req.address, host_req.address);
        // The repacked request no longer routes to the PC on the device.
        assert_eq!(check_memopcode(&dev_req), InstrRoute::BypassToVcs);
    }

    #[test]
    #[should_panic(expected = "DataFetch")]
    fn repacking_standard_reads_is_a_bug() {
        let _ = repack(&M2sReq::mem_read(0, 0), 1, 2);
    }
}
