//! `pifs-rec` — a from-scratch Rust reproduction of *PIFS-Rec:
//! Process-In-Fabric-Switch for Large-Scale Recommendation System
//! Inferences* (MICRO 2024).
//!
//! PIFS-Rec accelerates the bandwidth-bound embedding stage of DLRM
//! inference by executing SparseLengthSum accumulation inside the CXL
//! fabric switch, next to pooled Type 3 memory, combined with tiered-
//! memory page management and an on-switch SRAM row buffer.
//!
//! This facade re-exports the whole workspace:
//!
//! * [`pifs_core`] — the process core, ACR, OoO engine, HTR buffer,
//!   multi-switch forwarding, and the full-system simulator;
//! * [`cxlsim`] / [`memsim`] — the CXL fabric and DDR timing substrates;
//! * [`dlrm`] / [`tracegen`] — the workload;
//! * [`pagemgmt`] — the tiered-memory software layer;
//! * [`baselines`] — Pond, BEACON-S, RecNMP and the GPU roofline;
//! * [`tco`] — cost/power/energy models.
//!
//! # Examples
//!
//! ```
//! use pifs_rec::prelude::*;
//!
//! let model = ModelConfig::rmc1().scaled_down(16);
//! let trace = TraceSpec {
//!     distribution: Distribution::Uniform,
//!     n_tables: model.n_tables,
//!     rows_per_table: model.emb_num,
//!     batch_size: 4,
//!     n_batches: 2,
//!     bag_size: model.bag_size,
//!     seed: 1,
//! }
//! .generate();
//! let metrics = SlsSystem::new(SystemConfig::pifs_rec(model)).run_trace(&trace);
//! assert!(metrics.total_ns > 0);
//! ```

pub use baselines;
pub use cxlsim;
pub use dlrm;
pub use memsim;
pub use pagemgmt;
pub use pifs_core;
pub use simkit;
pub use tco;
pub use tracegen;

pub use pifs_core::system::{
    BufferConfig, ComputeSite, PmConfig, PmStyle, RunMetrics, ShedPolicy, SlsSystem, SystemConfig,
};
pub use pifs_core::{BufferPolicy, ClusterConfig, ClusterMetrics, ShardPolicy, SlsCluster};
pub use simkit::{FaultSchedule, FaultSpec};

/// The most common imports for driving the simulator.
pub mod prelude {
    pub use baselines::Scheme;
    pub use dlrm::ModelConfig;
    pub use pifs_core::engine::cluster::{ClusterConfig, ShardPolicy, SlsCluster};
    pub use pifs_core::system::{RunMetrics, ShedPolicy, SlsSystem, SystemConfig};
    pub use simkit::{FaultSchedule, FaultSpec};
    pub use tracegen::{ArrivalProcess, Distribution, TraceSpec};
}
