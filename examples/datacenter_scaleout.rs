//! Scale-out study: multi-host and multi-switch fabrics (§IV-C).
//!
//! Sweeps hosts 1→8 on a single switch, then fully connected fabrics of
//! 2→16 switches with one host + one device each, printing how makespan
//! scales — the Fig 13(c)/Fig 14 experiment at example scale.
//!
//! ```bash
//! cargo run --release --example datacenter_scaleout
//! ```

use pifs_rec::prelude::*;

fn main() {
    let model = ModelConfig::rmc2().scaled_down(16);
    let trace = TraceSpec {
        distribution: Distribution::MetaLike {
            reuse_frac: 0.35,
            s: 1.05,
        },
        n_tables: model.n_tables,
        rows_per_table: model.emb_num,
        batch_size: 32,
        n_batches: 8,
        bag_size: model.bag_size,
        seed: 17,
    }
    .generate();

    println!("-- multi-host scaling (one switch, 8 devices) --");
    let mut base = None;
    for hosts in [1u16, 2, 4, 8] {
        let mut cfg = SystemConfig::pifs_rec(model.clone());
        cfg.n_hosts = hosts;
        let m = SlsSystem::new(cfg).run_trace(&trace);
        let baseline = *base.get_or_insert(m.total_ns as f64);
        println!(
            "  {hosts} host(s): {:>10} ns  speedup {:.2}x",
            m.total_ns,
            baseline / m.total_ns as f64
        );
    }

    println!();
    println!("-- multi-switch scaling (one host + one device per switch) --");
    let mut base = None;
    for switches in [1u16, 2, 4, 8, 16] {
        let mut cfg = SystemConfig::pifs_rec(model.clone());
        cfg.n_switches = switches;
        cfg.n_hosts = switches;
        cfg.n_devices = switches.max(8);
        let m = SlsSystem::new(cfg).run_trace(&trace);
        let baseline = *base.get_or_insert(m.total_ns as f64);
        println!(
            "  {switches:>2} switch(es): {:>10} ns  speedup {:.2}x",
            m.total_ns,
            baseline / m.total_ns as f64
        );
    }
    println!();
    println!("Multi-layer instruction forwarding accumulates rows on the");
    println!("switch nearest each device; only sub-results cross the fabric.");
}
