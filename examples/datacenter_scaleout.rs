//! Scale-out study: multi-host and multi-switch fabrics (§IV-C), plus
//! the cluster router one level up.
//!
//! Sweeps hosts 1→8 on a single switch, then fully connected fabrics of
//! 2→16 switches with one host + one device each, printing how makespan
//! scales — the Fig 13(c)/Fig 14 experiment at example scale. Finally
//! shards the embedding tables across whole PIFS nodes behind the
//! cluster router and serves an open-loop stream, showing the fleet's
//! p99 under both placement policies (the `cluster_qps` scenario at
//! example scale).
//!
//! ```bash
//! cargo run --release --example datacenter_scaleout
//! ```

use pifs_rec::prelude::*;

fn main() {
    let model = ModelConfig::rmc2().scaled_down(16);
    let trace = TraceSpec {
        distribution: Distribution::MetaLike {
            reuse_frac: 0.35,
            s: 1.05,
        },
        n_tables: model.n_tables,
        rows_per_table: model.emb_num,
        batch_size: 32,
        n_batches: 8,
        bag_size: model.bag_size,
        seed: 17,
    }
    .generate();

    println!("-- multi-host scaling (one switch, 8 devices) --");
    let mut base = None;
    for hosts in [1u16, 2, 4, 8] {
        let mut cfg = SystemConfig::pifs_rec(model.clone());
        cfg.n_hosts = hosts;
        let m = SlsSystem::new(cfg).run_trace(&trace);
        let baseline = *base.get_or_insert(m.total_ns as f64);
        println!(
            "  {hosts} host(s): {:>10} ns  speedup {:.2}x",
            m.total_ns,
            baseline / m.total_ns as f64
        );
    }

    println!();
    println!("-- multi-switch scaling (one host + one device per switch) --");
    let mut base = None;
    for switches in [1u16, 2, 4, 8, 16] {
        let mut cfg = SystemConfig::pifs_rec(model.clone());
        cfg.n_switches = switches;
        cfg.n_hosts = switches;
        cfg.n_devices = switches.max(8);
        let m = SlsSystem::new(cfg).run_trace(&trace);
        let baseline = *base.get_or_insert(m.total_ns as f64);
        println!(
            "  {switches:>2} switch(es): {:>10} ns  speedup {:.2}x",
            m.total_ns,
            baseline / m.total_ns as f64
        );
    }
    println!();
    println!("Multi-layer instruction forwarding accumulates rows on the");
    println!("switch nearest each device; only sub-results cross the fabric.");

    println!();
    println!("-- cluster router: sharded serving across whole PIFS nodes --");
    // An open-loop stream against the same trace: each query's bags are
    // routed to the shards owning their rows, per-shard partial sums
    // merge exactly (bit-identical for every node count — the cluster
    // layer's invariant), and a query completes when its last partial
    // lands back at the router.
    let queries = (trace.batch_size * trace.batches.len() as u32) as usize;
    let arrivals = ArrivalProcess::Poisson { qps: 4_000_000.0 }.times(queries, 23);
    for policy in [ShardPolicy::TablePartition, ShardPolicy::RowHash] {
        for nodes in [1u16, 2, 4] {
            let cfg = ClusterConfig::new(nodes, policy, SystemConfig::pifs_rec(model.clone()));
            let m = SlsCluster::new(cfg).run_open_loop(&trace, &arrivals);
            println!(
                "  {:>15}, {nodes} node(s): p99 {:>7} ns  fanout {:.2}  checksum {:.3}",
                policy.label(),
                m.latency.percentile(0.99),
                m.mean_fanout,
                m.checksum
            );
        }
    }
    println!();
    println!("Table partitioning keeps whole bags on one node (fan-out ~1 per");
    println!("table); row hashing scatters rows and pays the partial-sum merge");
    println!("hop. The checksum column is identical everywhere: the f64 merge");
    println!("plane is exact, so sharding cannot move a single bit.");

    println!();
    println!("-- failover: fail-stop faults vs hot-row replication --");
    // The same 4-node fleet under seeded fail-stop schedules. Without
    // replicas a dead owner's rows are simply lost (coverage falls);
    // replicating the hottest rows on every shard gives the router
    // somewhere to fail over to, buying availability back.
    for fault in ["none", "failstop:8000", "failstop:32000"] {
        for replicas in [0u32, 64] {
            let spec = FaultSpec::parse(fault).expect("fault spec");
            let mut cfg = ClusterConfig::new(
                4,
                ShardPolicy::RowHash,
                SystemConfig::pifs_rec(model.clone()),
            );
            cfg.hot_rows_per_table = replicas;
            cfg.faults = FaultSchedule::generate(spec, 2024, 4, 1_000_000);
            let m = SlsCluster::new(cfg).run_open_loop(&trace, &arrivals);
            println!(
                "  {fault:>15}, {replicas:>2} replicas/table: avail {:>6.3}  coverage {:>6.3}  failovers {:>4}",
                m.availability(),
                m.mean_coverage,
                m.failovers
            );
        }
    }
    println!();
    println!("Availability degrades as the fail-stop rate rises; the replica");
    println!("column recovers coverage because replicated hot rows survive an");
    println!("owner's death. Full-coverage answers stay bit-identical to the");
    println!("fault-free checksum: dropping a partial never re-associates the");
    println!("surviving exact sums.");
}
