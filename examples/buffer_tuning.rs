//! On-switch buffer tuning (§IV-A4 / Fig 15): sweep SRAM capacity and
//! replacement policy on a skewed trace and watch HTR pull ahead of
//! LRU/FIFO — then lose its edge when the SRAM gets big and slow.
//!
//! ```bash
//! cargo run --release --example buffer_tuning
//! ```

use pifs_rec::prelude::*;
use pifs_rec::{BufferConfig, BufferPolicy};

fn main() {
    let model = ModelConfig::rmc4().scaled_down(64);
    let trace = TraceSpec {
        distribution: Distribution::MetaLike {
            reuse_frac: 0.35,
            s: 1.05,
        },
        n_tables: model.n_tables,
        rows_per_table: model.emb_num,
        batch_size: 32,
        n_batches: 10,
        bag_size: model.bag_size,
        seed: 41,
    }
    .generate();

    // No-buffer baseline.
    let mut no_buf = SystemConfig::pifs_rec(model.clone());
    no_buf.buffer = None;
    let base = SlsSystem::new(no_buf).run_trace(&trace).total_ns as f64;
    println!("no buffer: {base:>10} ns (baseline)\n");
    println!(
        "{:>9} {:>7} {:>10} {:>9} {:>8}",
        "capacity", "policy", "total ns", "speedup", "hits"
    );

    for cap_kb in [16u64, 32, 64, 128, 256] {
        for (label, policy) in [
            ("HTR", BufferPolicy::Htr),
            ("LRU", BufferPolicy::Lru),
            ("FIFO", BufferPolicy::Fifo),
        ] {
            let mut cfg = SystemConfig::pifs_rec(model.clone());
            cfg.buffer = Some(BufferConfig {
                policy,
                capacity_bytes: cap_kb * 1024,
            });
            let m = SlsSystem::new(cfg).run_trace(&trace);
            println!(
                "{:>7}KB {:>7} {:>10} {:>8.1}% {:>7.1}%",
                cap_kb,
                label,
                m.total_ns,
                (base / m.total_ns as f64 - 1.0) * 100.0,
                m.buffer_hit_ratio() * 100.0
            );
        }
    }
    println!();
    println!("HTR profiles access frequency and refuses to evict hot rows");
    println!("for one-shot scans — recency-based policies cannot tell the");
    println!("difference (§IV-A4).");
}
