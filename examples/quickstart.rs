//! Quickstart: run one PIFS-Rec inference trace and print the headline
//! comparison against Pond.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use pifs_rec::prelude::*;

fn main() {
    // A laptop-scale RMC1: Table I ratios, 4x fewer embeddings.
    let model = ModelConfig::rmc1().scaled_down(4);

    // A Meta-like embedding access trace: Zipfian popularity plus
    // short-range reuse, the pattern the on-switch buffer exploits.
    let trace = TraceSpec {
        distribution: Distribution::MetaLike {
            reuse_frac: 0.35,
            s: 1.05,
        },
        n_tables: model.n_tables,
        rows_per_table: model.emb_num,
        batch_size: 32,
        n_batches: 8,
        bag_size: model.bag_size,
        seed: 7,
    }
    .generate();

    println!(
        "workload: {} lookups over {} tables",
        trace.total_lookups(),
        trace.n_tables
    );

    // PIFS-Rec: in-switch accumulation, tiered pages, HTR buffer, OoO.
    let pifs = SlsSystem::new(SystemConfig::pifs_rec(model.clone())).run_trace(&trace);
    // Pond: the same fabric, but every row crosses to the host.
    let pond = SlsSystem::new(SystemConfig::pond(model.clone())).run_trace(&trace);

    println!();
    println!(
        "PIFS-Rec : {:>12} ns  (buffer hit ratio {:.1}%)",
        pifs.total_ns,
        pifs.buffer_hit_ratio() * 100.0
    );
    println!("Pond     : {:>12} ns", pond.total_ns);
    println!();
    println!(
        "speedup  : {:.2}x (paper reports 3.89x at full scale)",
        pond.total_ns as f64 / pifs.total_ns as f64
    );
    assert!(
        (pifs.checksum - pond.checksum).abs() < pifs.checksum.abs() * 1e-4 + 1e-6,
        "both placements must compute the same SLS results"
    );
    println!("functional check: both systems produced identical SLS sums ✓");
}
