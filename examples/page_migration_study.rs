//! Page-management deep dive (§IV-B): watch the tiered-memory software
//! learn the hot set, balance device load, and pay (or avoid) migration
//! overheads.
//!
//! ```bash
//! cargo run --release --example page_migration_study
//! ```

use pagemgmt::MigrationGranularity;
use pifs_rec::prelude::*;
use pifs_rec::PmConfig;

fn main() {
    let model = ModelConfig::rmc3().scaled_down(32);
    let trace = TraceSpec {
        distribution: Distribution::MetaLike {
            reuse_frac: 0.35,
            s: 1.05,
        },
        n_tables: model.n_tables,
        rows_per_table: model.emb_num,
        batch_size: 32,
        n_batches: 16,
        bag_size: model.bag_size,
        seed: 23,
    }
    .generate();

    println!("-- migration granularity (Fig 13a's red vs green) --");
    for (label, gran) in [
        ("page-block (OS default)", MigrationGranularity::PageBlock),
        (
            "cache-line block (PIFS MC)",
            MigrationGranularity::CacheLineBlock,
        ),
    ] {
        let mut cfg = SystemConfig::pifs_rec(model.clone());
        cfg.warmup_batches = 6; // measure steady state, not the cold boot
        cfg.page_mgmt = Some(PmConfig {
            granularity: gran,
            ..PmConfig::default()
        });
        let m = SlsSystem::new(cfg).run_trace(&trace);
        println!(
            "  {label:<28} total {:>10} ns  migrations {:>5}  cost {:.2}% of latency",
            m.total_ns,
            m.migrations,
            m.migration_cost_frac() * 100.0
        );
    }

    println!();
    println!("-- what management buys: lookup placement --");
    for (label, managed) in [("static 80/20 interleave", false), ("PM-managed", true)] {
        let mut cfg = SystemConfig::pifs_rec(model.clone());
        cfg.warmup_batches = 6;
        if !managed {
            cfg.page_mgmt = None;
        }
        let m = SlsSystem::new(cfg).run_trace(&trace);
        println!(
            "  {label:<28} local {:>5.1}%  cxl {:>5.1}%  total {:>10} ns",
            m.local_lookups as f64 / m.lookups as f64 * 100.0,
            m.cxl_lookups as f64 / m.lookups as f64 * 100.0,
            m.total_ns
        );
    }

    println!();
    println!("-- device balance (Fig 13b) --");
    let mut cfg = SystemConfig::pifs_rec(model);
    cfg.warmup_batches = 6;
    cfg.n_devices = 8;
    let m = SlsSystem::new(cfg).run_trace(&trace);
    let max = *m.device_accesses.iter().max().unwrap_or(&1) as f64;
    for (d, &c) in m.device_accesses.iter().enumerate() {
        let bar = "#".repeat((c as f64 / max * 40.0) as usize);
        println!("  device {d}: {c:>7} accesses  {bar}");
    }
}
